//! The QALD-style evaluation: per-question Precision / Recall / F1 and the
//! Macro averages used throughout the paper's tables, plus the failure
//! breakdown of Figure 8.

use kgqan_rdf::Term;

use crate::benchmark::{Benchmark, BenchmarkQuestion};

/// A system's answer to one benchmark question.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SystemAnswer {
    /// The returned answer terms (empty if the system gave up).
    pub answers: Vec<Term>,
    /// The returned Boolean verdict (yes/no questions).
    pub boolean: Option<bool>,
    /// Whether the system's question-understanding step extracted anything
    /// usable (used by Figure 8 to split failures into "due to QU" vs other).
    pub understanding_ok: bool,
    /// Wall-clock seconds spent on each phase, when the system reports them:
    /// (question understanding, linking, execution + filtration).
    pub phase_seconds: Option<(f64, f64, f64)>,
}

impl SystemAnswer {
    /// An empty answer (the system failed entirely).
    pub fn empty() -> Self {
        SystemAnswer::default()
    }
}

/// Per-question evaluation result.
#[derive(Debug, Clone, PartialEq)]
pub struct QuestionResult {
    /// Question id within the benchmark.
    pub question_id: usize,
    /// Precision for this question.
    pub precision: f64,
    /// Recall for this question.
    pub recall: f64,
    /// F1 for this question.
    pub f1: f64,
    /// Whether the system understood the question at all.
    pub understanding_ok: bool,
}

/// The Figure 8 failure breakdown: questions with recall 0 and F1 0, split
/// into those whose question understanding already failed and the rest.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FailureBreakdown {
    /// Questions with R = 0 and F1 = 0.
    pub total_failures: usize,
    /// Of those, failures where question understanding produced nothing
    /// usable.
    pub due_to_question_understanding: usize,
}

impl FailureBreakdown {
    /// Failures attributable to linking / execution / filtration.
    pub fn due_to_other(&self) -> usize {
        self.total_failures - self.due_to_question_understanding
    }
}

/// A full evaluation report for one system on one benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct EvaluationReport {
    /// The benchmark name.
    pub benchmark: String,
    /// The evaluated system's name.
    pub system: String,
    /// Macro precision (mean of per-question precision).
    pub macro_precision: f64,
    /// Macro recall.
    pub macro_recall: f64,
    /// Macro F1.
    pub macro_f1: f64,
    /// Per-question results.
    pub per_question: Vec<QuestionResult>,
    /// Failure breakdown (Figure 8).
    pub failures: FailureBreakdown,
    /// Mean phase times in seconds (QU, linking, execution+filtration), if
    /// the system reported them (Figure 7).
    pub mean_phase_seconds: Option<(f64, f64, f64)>,
}

impl EvaluationReport {
    /// Number of questions with F1 > 0 ("solved", the Table 5 notion).
    pub fn solved(&self) -> usize {
        self.per_question.iter().filter(|q| q.f1 > 0.0).count()
    }
}

/// Score a single question with QALD semantics.
///
/// * Boolean questions: correct verdict ⇒ P = R = F1 = 1, otherwise 0.
/// * Otherwise precision is |gold ∩ returned| / |returned| (0 when nothing is
///   returned but gold exists), recall is |gold ∩ returned| / |gold|, and F1
///   is their harmonic mean.
pub fn score_question(question: &BenchmarkQuestion, answer: &SystemAnswer) -> QuestionResult {
    let (precision, recall) = if let Some(gold) = question.gold_boolean {
        match answer.boolean {
            Some(b) if b == gold => (1.0, 1.0),
            _ => (0.0, 0.0),
        }
    } else {
        let gold: Vec<&Term> = question.gold_answers.iter().collect();
        let returned = &answer.answers;
        if returned.is_empty() {
            (0.0, 0.0)
        } else {
            let correct = returned.iter().filter(|a| gold.contains(a)).count() as f64;
            let precision = correct / returned.len() as f64;
            let recall = if gold.is_empty() {
                if returned.is_empty() {
                    1.0
                } else {
                    0.0
                }
            } else {
                correct / gold.len() as f64
            };
            (precision, recall)
        }
    };
    let f1 = if precision + recall > 0.0 {
        2.0 * precision * recall / (precision + recall)
    } else {
        0.0
    };
    QuestionResult {
        question_id: question.id,
        precision,
        recall,
        f1,
        understanding_ok: answer.understanding_ok,
    }
}

/// Evaluate a system's answers over a whole benchmark.
///
/// `answers` must be aligned with `benchmark.questions` (same order); missing
/// entries count as empty answers.
pub fn evaluate(benchmark: &Benchmark, system: &str, answers: &[SystemAnswer]) -> EvaluationReport {
    let empty = SystemAnswer::empty();
    let mut per_question = Vec::with_capacity(benchmark.len());
    let mut failures = FailureBreakdown::default();
    let mut phase_sums = (0.0f64, 0.0f64, 0.0f64);
    let mut phase_count = 0usize;

    for (i, question) in benchmark.questions.iter().enumerate() {
        let answer = answers.get(i).unwrap_or(&empty);
        let result = score_question(question, answer);
        if result.recall == 0.0 && result.f1 == 0.0 {
            failures.total_failures += 1;
            if !result.understanding_ok {
                failures.due_to_question_understanding += 1;
            }
        }
        if let Some((a, b, c)) = answer.phase_seconds {
            phase_sums.0 += a;
            phase_sums.1 += b;
            phase_sums.2 += c;
            phase_count += 1;
        }
        per_question.push(result);
    }

    let n = per_question.len().max(1) as f64;
    let macro_precision = per_question.iter().map(|q| q.precision).sum::<f64>() / n;
    let macro_recall = per_question.iter().map(|q| q.recall).sum::<f64>() / n;
    // Macro F1 as computed by the QALD evaluation script: the harmonic mean
    // of the macro precision and macro recall.
    let macro_f1 = if macro_precision + macro_recall > 0.0 {
        2.0 * macro_precision * macro_recall / (macro_precision + macro_recall)
    } else {
        0.0
    };
    let mean_phase_seconds = if phase_count > 0 {
        Some((
            phase_sums.0 / phase_count as f64,
            phase_sums.1 / phase_count as f64,
            phase_sums.2 / phase_count as f64,
        ))
    } else {
        None
    };

    EvaluationReport {
        benchmark: benchmark.name.clone(),
        system: system.to_string(),
        macro_precision,
        macro_recall,
        macro_f1,
        per_question,
        failures,
        mean_phase_seconds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmark::{LinkingGold, QueryShape, QuestionCategory};
    use crate::kg::KgFlavor;

    fn question(id: usize, gold: Vec<&str>, boolean: Option<bool>) -> BenchmarkQuestion {
        BenchmarkQuestion {
            id,
            text: format!("q{id}"),
            gold_sparql: String::new(),
            gold_answers: gold.into_iter().map(Term::iri).collect(),
            gold_boolean: boolean,
            category: QuestionCategory::SingleFact,
            shape: QueryShape::Star,
            linking: LinkingGold::default(),
        }
    }

    fn answer(terms: Vec<&str>) -> SystemAnswer {
        SystemAnswer {
            answers: terms.into_iter().map(Term::iri).collect(),
            boolean: None,
            understanding_ok: true,
            phase_seconds: None,
        }
    }

    #[test]
    fn exact_answer_scores_one() {
        let q = question(0, vec!["http://e/a"], None);
        let r = score_question(&q, &answer(vec!["http://e/a"]));
        assert_eq!((r.precision, r.recall, r.f1), (1.0, 1.0, 1.0));
    }

    #[test]
    fn partial_answers_have_fractional_scores() {
        let q = question(0, vec!["http://e/a", "http://e/b"], None);
        let r = score_question(&q, &answer(vec!["http://e/a", "http://e/c"]));
        assert!((r.precision - 0.5).abs() < 1e-9);
        assert!((r.recall - 0.5).abs() < 1e-9);
        assert!((r.f1 - 0.5).abs() < 1e-9);
    }

    #[test]
    fn empty_answer_scores_zero() {
        let q = question(0, vec!["http://e/a"], None);
        let r = score_question(&q, &SystemAnswer::empty());
        assert_eq!((r.precision, r.recall, r.f1), (0.0, 0.0, 0.0));
    }

    #[test]
    fn boolean_questions_score_on_verdict() {
        let q = question(0, vec![], Some(true));
        let right = SystemAnswer {
            boolean: Some(true),
            understanding_ok: true,
            ..Default::default()
        };
        let wrong = SystemAnswer {
            boolean: Some(false),
            understanding_ok: true,
            ..Default::default()
        };
        assert_eq!(score_question(&q, &right).f1, 1.0);
        assert_eq!(score_question(&q, &wrong).f1, 0.0);
        assert_eq!(score_question(&q, &SystemAnswer::empty()).f1, 0.0);
    }

    #[test]
    fn evaluate_computes_macro_metrics_and_failures() {
        let benchmark = Benchmark {
            name: "toy".into(),
            flavor: KgFlavor::Dbpedia10,
            questions: vec![
                question(0, vec!["http://e/a"], None),
                question(1, vec!["http://e/b"], None),
                question(2, vec!["http://e/c"], None),
            ],
        };
        let answers = vec![
            answer(vec!["http://e/a"]), // perfect
            answer(vec!["http://e/x"]), // wrong (not QU's fault)
            SystemAnswer::empty(),      // total failure, QU failed
        ];
        let report = evaluate(&benchmark, "toy-system", &answers);
        assert!((report.macro_precision - (1.0 + 0.0 + 0.0) / 3.0).abs() < 1e-9);
        assert!((report.macro_recall - (1.0 / 3.0)).abs() < 1e-9);
        assert!(report.macro_f1 > 0.0);
        assert_eq!(report.failures.total_failures, 2);
        assert_eq!(report.failures.due_to_question_understanding, 1);
        assert_eq!(report.failures.due_to_other(), 1);
        assert_eq!(report.solved(), 1);
    }

    #[test]
    fn missing_answers_count_as_empty() {
        let benchmark = Benchmark {
            name: "toy".into(),
            flavor: KgFlavor::Dbpedia10,
            questions: vec![question(0, vec!["http://e/a"], None)],
        };
        let report = evaluate(&benchmark, "s", &[]);
        assert_eq!(report.macro_f1, 0.0);
        assert_eq!(report.failures.total_failures, 1);
    }

    #[test]
    fn phase_times_are_averaged() {
        let benchmark = Benchmark {
            name: "toy".into(),
            flavor: KgFlavor::Dbpedia10,
            questions: vec![
                question(0, vec!["http://e/a"], None),
                question(1, vec!["http://e/b"], None),
            ],
        };
        let answers = vec![
            SystemAnswer {
                answers: vec![Term::iri("http://e/a")],
                boolean: None,
                understanding_ok: true,
                phase_seconds: Some((1.0, 2.0, 3.0)),
            },
            SystemAnswer {
                answers: vec![Term::iri("http://e/b")],
                boolean: None,
                understanding_ok: true,
                phase_seconds: Some((3.0, 4.0, 5.0)),
            },
        ];
        let report = evaluate(&benchmark, "s", &answers);
        assert_eq!(report.mean_phase_seconds, Some((2.0, 3.0, 4.0)));
    }
}
