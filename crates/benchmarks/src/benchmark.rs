//! Benchmark data structures: questions, gold answers, gold linking pairs
//! and the taxonomy labels of Table 5.

use kgqan_rdf::Term;

use crate::kg::KgFlavor;

/// The linguistic category of a question (the LC-QuAD 2.0 taxonomy the paper
/// reuses in Table 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QuestionCategory {
    /// A single fact: "Who is the wife of Barack Obama?"
    SingleFact,
    /// A single fact with an explicit answer type: "Which river …".
    SingleFactWithType,
    /// Multiple facts constraining one unknown.
    MultiFact,
    /// A yes/no question.
    Boolean,
}

impl QuestionCategory {
    /// All categories in Table 5 order.
    pub const ALL: [QuestionCategory; 4] = [
        QuestionCategory::SingleFact,
        QuestionCategory::SingleFactWithType,
        QuestionCategory::MultiFact,
        QuestionCategory::Boolean,
    ];

    /// Column label used in the Table 5 harness.
    pub fn label(&self) -> &'static str {
        match self {
            QuestionCategory::SingleFact => "Single fact",
            QuestionCategory::SingleFactWithType => "Fact with type",
            QuestionCategory::MultiFact => "Multi fact",
            QuestionCategory::Boolean => "Boolean",
        }
    }
}

/// The SPARQL shape of the gold query (Table 5's other dimension).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryShape {
    /// All triple patterns share one subject/unknown.
    Star,
    /// At least one object of a triple pattern is the subject of another.
    Path,
}

impl QueryShape {
    /// Column label used in the Table 5 harness.
    pub fn label(&self) -> &'static str {
        match self {
            QueryShape::Star => "Star",
            QueryShape::Path => "Path",
        }
    }
}

/// Gold entity/relation linking pairs for a question (the Figure 9 dataset).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LinkingGold {
    /// `(question phrase, KG vertex)` pairs.
    pub entities: Vec<(String, Term)>,
    /// `(question phrase, KG predicate)` pairs.
    pub relations: Vec<(String, Term)>,
}

/// One benchmark question with its gold data.
#[derive(Debug, Clone)]
pub struct BenchmarkQuestion {
    /// Stable id within the benchmark.
    pub id: usize,
    /// The natural-language question.
    pub text: String,
    /// The gold SPARQL query (for reporting and taxonomy; answers below are
    /// authoritative).
    pub gold_sparql: String,
    /// The gold answers (empty for Boolean questions).
    pub gold_answers: Vec<Term>,
    /// The gold Boolean verdict for yes/no questions.
    pub gold_boolean: Option<bool>,
    /// Linguistic category.
    pub category: QuestionCategory,
    /// Gold SPARQL shape.
    pub shape: QueryShape,
    /// Gold linking pairs.
    pub linking: LinkingGold,
}

impl BenchmarkQuestion {
    /// True if this is a Boolean question.
    pub fn is_boolean(&self) -> bool {
        self.gold_boolean.is_some()
    }
}

/// A benchmark: a named question set bound to one KG flavor.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// Benchmark name ("QALD-9", "LC-QuAD 1.0", "YAGO-Bench", …).
    pub name: String,
    /// The KG flavor the questions target.
    pub flavor: KgFlavor,
    /// The questions.
    pub questions: Vec<BenchmarkQuestion>,
}

impl Benchmark {
    /// Number of questions.
    pub fn len(&self) -> usize {
        self.questions.len()
    }

    /// True if the benchmark has no questions.
    pub fn is_empty(&self) -> bool {
        self.questions.is_empty()
    }

    /// Count of questions per category.
    pub fn count_by_category(&self, category: QuestionCategory) -> usize {
        self.questions
            .iter()
            .filter(|q| q.category == category)
            .count()
    }

    /// Count of questions per shape.
    pub fn count_by_shape(&self, shape: QueryShape) -> usize {
        self.questions.iter().filter(|q| q.shape == shape).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_question(
        id: usize,
        category: QuestionCategory,
        shape: QueryShape,
    ) -> BenchmarkQuestion {
        BenchmarkQuestion {
            id,
            text: format!("question {id}"),
            gold_sparql: "SELECT ?x WHERE { ?x ?p ?o . }".into(),
            gold_answers: vec![Term::iri(format!("http://e/{id}"))],
            gold_boolean: None,
            category,
            shape,
            linking: LinkingGold::default(),
        }
    }

    #[test]
    fn category_and_shape_labels() {
        assert_eq!(QuestionCategory::SingleFact.label(), "Single fact");
        assert_eq!(QuestionCategory::Boolean.label(), "Boolean");
        assert_eq!(QueryShape::Star.label(), "Star");
        assert_eq!(QueryShape::Path.label(), "Path");
        assert_eq!(QuestionCategory::ALL.len(), 4);
    }

    #[test]
    fn benchmark_counts() {
        let benchmark = Benchmark {
            name: "test".into(),
            flavor: KgFlavor::Dbpedia10,
            questions: vec![
                sample_question(0, QuestionCategory::SingleFact, QueryShape::Star),
                sample_question(1, QuestionCategory::SingleFact, QueryShape::Path),
                sample_question(2, QuestionCategory::MultiFact, QueryShape::Star),
            ],
        };
        assert_eq!(benchmark.len(), 3);
        assert!(!benchmark.is_empty());
        assert_eq!(benchmark.count_by_category(QuestionCategory::SingleFact), 2);
        assert_eq!(benchmark.count_by_category(QuestionCategory::Boolean), 0);
        assert_eq!(benchmark.count_by_shape(QueryShape::Star), 2);
        assert_eq!(benchmark.count_by_shape(QueryShape::Path), 1);
    }

    #[test]
    fn boolean_detection() {
        let mut q = sample_question(0, QuestionCategory::Boolean, QueryShape::Star);
        assert!(!q.is_boolean());
        q.gold_boolean = Some(true);
        q.gold_answers.clear();
        assert!(q.is_boolean());
    }
}
