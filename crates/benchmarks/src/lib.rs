//! # kgqan-benchmarks
//!
//! The evaluation substrate of the KGQAn reproduction: synthetic knowledge
//! graphs standing in for the four real KGs of the paper's evaluation
//! (DBpedia, YAGO-4, DBLP and the Microsoft Academic Graph), benchmark
//! question sets standing in for QALD-9, LC-QuAD 1.0 and the three
//! hand-built benchmarks (YAGO-Bench, DBLP-Bench, MAG-Bench), gold answers,
//! the QALD-style Macro-P/R/F1 evaluator, the question taxonomy of Table 5
//! and the entity/relation-linking gold data of Figure 9.
//!
//! The synthetic KGs preserve the *shape* properties the paper's experiments
//! depend on:
//!
//! * DBpedia/YAGO: human-readable resource URIs, `rdfs:label` descriptions,
//!   rich `rdf:type` information, general-fact relations,
//! * DBLP: publication records with long titles as labels,
//! * MAG: **opaque numeric entity URIs** whose only descriptions are
//!   `foaf:name` literals — the property that breaks gAnswer's URI-text
//!   index and EDGQA's default label indexing (§7.2.3).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod benchmark;
pub mod eval;
pub mod kg;
pub mod names;
pub mod questions;
pub mod suite;
pub mod taxonomy;

pub use benchmark::{Benchmark, BenchmarkQuestion, LinkingGold, QueryShape, QuestionCategory};
pub use eval::{evaluate, EvaluationReport, FailureBreakdown, QuestionResult, SystemAnswer};
pub use kg::{GeneratedKg, KgFlavor, KgScale};
pub use suite::{BenchmarkSuite, SuiteScale};
pub use taxonomy::TaxonomyCounts;
