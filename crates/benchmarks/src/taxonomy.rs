//! The question taxonomy of Table 5: how many questions of each SPARQL shape
//! and each linguistic category a system solves.

use crate::benchmark::{Benchmark, QueryShape, QuestionCategory};
use crate::eval::EvaluationReport;

/// Solved / total counts for one taxonomy cell.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CellCount {
    /// Number of questions in this cell.
    pub total: usize,
    /// Number of those the system solved (F1 > 0).
    pub solved: usize,
}

/// Table 5 counts for one system on one benchmark.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TaxonomyCounts {
    /// The system name.
    pub system: String,
    /// Counts per SPARQL shape.
    pub by_shape: Vec<(QueryShape, CellCount)>,
    /// Counts per linguistic category.
    pub by_category: Vec<(QuestionCategory, CellCount)>,
}

impl TaxonomyCounts {
    /// Compute the taxonomy cells for one evaluation report.
    ///
    /// The report's `per_question` entries must be aligned with the
    /// benchmark's questions (which `evaluate` guarantees).
    pub fn compute(benchmark: &Benchmark, report: &EvaluationReport) -> TaxonomyCounts {
        let mut by_shape = vec![
            (QueryShape::Star, CellCount::default()),
            (QueryShape::Path, CellCount::default()),
        ];
        let mut by_category: Vec<(QuestionCategory, CellCount)> = QuestionCategory::ALL
            .iter()
            .map(|c| (*c, CellCount::default()))
            .collect();

        for (i, question) in benchmark.questions.iter().enumerate() {
            let solved = report
                .per_question
                .get(i)
                .map(|r| r.f1 > 0.0)
                .unwrap_or(false);
            for (shape, cell) in by_shape.iter_mut() {
                if *shape == question.shape {
                    cell.total += 1;
                    if solved {
                        cell.solved += 1;
                    }
                }
            }
            for (category, cell) in by_category.iter_mut() {
                if *category == question.category {
                    cell.total += 1;
                    if solved {
                        cell.solved += 1;
                    }
                }
            }
        }

        TaxonomyCounts {
            system: report.system.clone(),
            by_shape,
            by_category,
        }
    }

    /// The cell for a given shape.
    pub fn shape(&self, shape: QueryShape) -> CellCount {
        self.by_shape
            .iter()
            .find(|(s, _)| *s == shape)
            .map(|(_, c)| *c)
            .unwrap_or_default()
    }

    /// The cell for a given category.
    pub fn category(&self, category: QuestionCategory) -> CellCount {
        self.by_category
            .iter()
            .find(|(c, _)| *c == category)
            .map(|(_, c)| *c)
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmark::{BenchmarkQuestion, LinkingGold};
    use crate::eval::{evaluate, SystemAnswer};
    use crate::kg::KgFlavor;
    use kgqan_rdf::Term;

    fn question(
        id: usize,
        category: QuestionCategory,
        shape: QueryShape,
        gold: &str,
    ) -> BenchmarkQuestion {
        BenchmarkQuestion {
            id,
            text: format!("q{id}"),
            gold_sparql: String::new(),
            gold_answers: vec![Term::iri(gold)],
            gold_boolean: None,
            category,
            shape,
            linking: LinkingGold::default(),
        }
    }

    #[test]
    fn taxonomy_counts_solved_per_cell() {
        let benchmark = Benchmark {
            name: "toy".into(),
            flavor: KgFlavor::Dbpedia10,
            questions: vec![
                question(
                    0,
                    QuestionCategory::SingleFact,
                    QueryShape::Star,
                    "http://e/a",
                ),
                question(
                    1,
                    QuestionCategory::MultiFact,
                    QueryShape::Star,
                    "http://e/b",
                ),
                question(
                    2,
                    QuestionCategory::SingleFact,
                    QueryShape::Path,
                    "http://e/c",
                ),
            ],
        };
        let answers = vec![
            SystemAnswer {
                answers: vec![Term::iri("http://e/a")],
                understanding_ok: true,
                ..Default::default()
            },
            SystemAnswer::empty(),
            SystemAnswer {
                answers: vec![Term::iri("http://e/c")],
                understanding_ok: true,
                ..Default::default()
            },
        ];
        let report = evaluate(&benchmark, "sys", &answers);
        let taxonomy = TaxonomyCounts::compute(&benchmark, &report);

        assert_eq!(taxonomy.shape(QueryShape::Star).total, 2);
        assert_eq!(taxonomy.shape(QueryShape::Star).solved, 1);
        assert_eq!(taxonomy.shape(QueryShape::Path).solved, 1);
        assert_eq!(taxonomy.category(QuestionCategory::SingleFact).solved, 2);
        assert_eq!(taxonomy.category(QuestionCategory::MultiFact).solved, 0);
        assert_eq!(taxonomy.category(QuestionCategory::Boolean).total, 0);
        assert_eq!(taxonomy.system, "sys");
    }
}
