//! End-to-end tests for the persisted perf trajectory: the criterion
//! shim's JSONL emitter round-trips through the minimal parser, merged
//! `BENCH_<area>.json` artifacts round-trip losslessly (schema, fields,
//! escaping, non-ASCII bench names), and the planner's rows-scanned probes
//! are deterministic.

use kgqan_bench::perfjson::Json;
use kgqan_bench::perftrack::{
    merge_records, parse_jsonl, planner_probes, AreaReport, BenchRecord, ProbeRecord, SCHEMA,
};

/// A shim-emitted JSONL line parses into exactly the stats that produced
/// it, including an escaped-quote, non-ASCII bench name.
#[test]
fn shim_jsonl_line_round_trips_through_the_parser() {
    let stats = criterion::Stats::from_sample_ns(vec![439.25, 441.0, 440.5], 3_000);
    let line = criterion::record_json_line(
        "störe",
        "ベンチ_group",
        "insert \"all\"/1 000\tfast",
        true,
        &stats,
    );
    let records = parse_jsonl(&format!("{line}\n\n{line}\n")).expect("JSONL parses");
    assert_eq!(records.len(), 2);
    let record = &records[0];
    assert_eq!(record.area, "störe");
    assert_eq!(record.group, "ベンチ_group");
    assert_eq!(record.bench, "insert \"all\"/1 000\tfast");
    assert!(record.smoke);
    assert_eq!(record.samples, stats.samples);
    assert_eq!(record.iters, stats.iters);
    // Shortest-round-trip float formatting: exact equality, not approx.
    assert_eq!(record.mean_ns, stats.mean_ns);
    assert_eq!(record.p50_ns, stats.p50_ns);
    assert_eq!(record.p95_ns, stats.p95_ns);
    assert_eq!(record.min_ns, stats.min_ns);
    assert_eq!(record.iters_per_sec, stats.iters_per_sec);
}

fn sample_record(area: &str, group: &str, bench: &str, p50: f64) -> BenchRecord {
    BenchRecord {
        area: area.to_string(),
        group: group.to_string(),
        bench: bench.to_string(),
        smoke: false,
        samples: 20,
        iters: 12_345,
        mean_ns: p50 * 1.07,
        p50_ns: p50,
        p95_ns: p50 * 1.9,
        min_ns: p50 * 0.8,
        iters_per_sec: 1e9 / (p50 * 1.07),
    }
}

/// A merged artifact survives `to_json` → parse → `from_json` unchanged,
/// with non-ASCII and escape-heavy names intact, and carries the expected
/// schema and metadata fields.
#[test]
fn merged_artifact_round_trips_losslessly() {
    let records = vec![
        sample_record(
            "planner",
            "sparql_planner_join_order",
            "worst_order_planned",
            3_200.5,
        ),
        sample_record(
            "planner",
            "sparql_planner_limit",
            "limit10_ströming \"quoted\"",
            3_400.0,
        ),
    ];
    let mut reports = merge_records(records, "abc123def456", false);
    assert_eq!(reports.len(), 1);
    reports[0].probes.push(ProbeRecord {
        name: "probe_日本語".to_string(),
        rows_scanned: 8,
        result_rows: 4,
    });

    let text = reports[0].to_json();
    // The artifact is well-formed JSON with the documented top-level shape.
    let doc = Json::parse(&text).expect("artifact is valid JSON");
    assert_eq!(doc.get("schema").and_then(Json::as_str), Some(SCHEMA));
    assert_eq!(doc.get("area").and_then(Json::as_str), Some("planner"));
    assert_eq!(
        doc.get("git_rev").and_then(Json::as_str),
        Some("abc123def456")
    );
    assert_eq!(doc.get("smoke").and_then(Json::as_bool), Some(false));
    assert_eq!(
        doc.get("benches")
            .and_then(Json::as_array)
            .map(<[Json]>::len),
        Some(2)
    );

    let parsed = AreaReport::from_json(&text).expect("artifact parses back");
    assert_eq!(parsed, reports[0]);
}

/// An artifact with an empty bench list (e.g. a probes-only area) still
/// round-trips.
#[test]
fn empty_sections_round_trip() {
    let report = AreaReport {
        schema: SCHEMA.to_string(),
        area: "service".to_string(),
        git_rev: "unknown".to_string(),
        smoke: true,
        benches: Vec::new(),
        probes: Vec::new(),
    };
    let parsed = AreaReport::from_json(&report.to_json()).expect("parses");
    assert_eq!(parsed, report);
}

/// The planner probes are deterministic executor counters: two fresh runs
/// agree exactly, the LIMIT probe proves streaming early-exit, and the
/// planned worst-order join scans orders of magnitude fewer rows than the
/// 20k-triple scan it would do unplanned.
#[test]
fn planner_probes_are_deterministic_and_tight() {
    let first = planner_probes();
    let second = planner_probes();
    assert_eq!(first, second);
    assert_eq!(first.len(), 3);

    let by_name = |name: &str| {
        first
            .iter()
            .find(|p| p.name == name)
            .unwrap_or_else(|| panic!("probe {name} missing"))
    };
    let limit = by_name("limit10_streaming_scan");
    assert_eq!(limit.result_rows, 10);
    assert!(limit.rows_scanned <= 10, "scanned {}", limit.rows_scanned);

    let join = by_name("worst_order_two_pattern_join");
    assert_eq!(join.result_rows, 4);
    assert!(join.rows_scanned <= 100, "scanned {}", join.rows_scanned);

    let lookup = by_name("selective_point_lookup");
    assert_eq!(lookup.result_rows, 4);
    assert!(lookup.rows_scanned <= 8, "scanned {}", lookup.rows_scanned);
}
