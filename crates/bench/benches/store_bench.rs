//! Criterion micro-benchmarks for the RDF store substrate: bulk loading,
//! triple-pattern matching under the six-way vs three-way index layouts
//! (the index-layout ablation called out in DESIGN.md), and full-text search.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kgqan_benchmarks::kg::{GeneratedKg, KgFlavor, KgScale};
use kgqan_rdf::{Store, Term, TriplePattern};

fn load_store(c: &mut Criterion) {
    let kg = GeneratedKg::generate(KgFlavor::Dbpedia10, KgScale::tiny());
    let triples: Vec<_> = kg.store.iter().collect();
    let mut group = c.benchmark_group("store_load");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    group.bench_function(BenchmarkId::new("insert_all", triples.len()), |b| {
        b.iter(|| {
            let mut store = Store::new();
            store.insert_all(triples.iter().cloned());
            store.len()
        })
    });
    group.finish();
}

fn pattern_matching(c: &mut Criterion) {
    let kg = GeneratedKg::generate(KgFlavor::Dbpedia10, KgScale::tiny());
    let six = kg.store.clone();
    let mut three = Store::new_three_way();
    three.insert_all(six.iter());
    let label = Term::iri(kgqan_rdf::vocab::RDFS_LABEL);
    let some_person = kg.facts.people[17].iri.clone();

    let mut group = c.benchmark_group("store_pattern_matching");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(3));
    for (name, store) in [("six_way", &six), ("three_way", &three)] {
        group.bench_function(BenchmarkId::new("by_predicate", name), |b| {
            let pattern = TriplePattern::any().with_predicate(label.clone());
            b.iter(|| store.matching(&pattern).len())
        });
        group.bench_function(BenchmarkId::new("by_subject_object", name), |b| {
            let pattern = TriplePattern::any()
                .with_subject(some_person.clone())
                .with_object(Term::literal_str(kg.facts.people[17].name.clone()));
            b.iter(|| store.matching(&pattern).len())
        });
    }
    group.finish();
}

/// The id-level access path the SPARQL join loops use: pattern encoding is
/// paid once, every probe is an iterator-driven range scan over `TermId`s,
/// and nothing is decoded.  `matching_decoded` is the legacy term-level
/// wrapper (encode + scan + decode + materialise) for comparison.
fn encoded_scan(c: &mut Criterion) {
    let kg = GeneratedKg::generate(KgFlavor::Dbpedia10, KgScale::tiny());
    let store = &kg.store;
    let label = Term::iri(kgqan_rdf::vocab::RDFS_LABEL);
    let pattern = TriplePattern::any().with_predicate(label);
    let encoded = store.encode_pattern(&pattern).expect("label is interned");

    let mut group = c.benchmark_group("store_encoded_scan");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(3));
    group.bench_function("scan_ids_only", |b| b.iter(|| store.scan(encoded).count()));
    group.bench_function("matching_decoded", |b| {
        b.iter(|| store.matching(&pattern).len())
    });
    group.finish();
}

fn text_search(c: &mut Criterion) {
    let kg = GeneratedKg::generate(KgFlavor::Mag, KgScale::tiny());
    let mut group = c.benchmark_group("store_text_search");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(3));
    group.bench_function("potential_relevant_vertices", |b| {
        b.iter(|| {
            kg.store
                .vertices_with_description_containing(&["query", "processing"], 400)
                .len()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    load_store,
    pattern_matching,
    encoded_scan,
    text_search
);
criterion_main!(area = "store"; benches);
