//! Criterion benchmark for the serving layer: one `QaService` answering a
//! small mixed workload sequentially vs. fanned out through `answer_batch`,
//! the single-vs-batched throughput comparison for the ROADMAP's
//! heavy-traffic north star.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use kgqan::{AnswerRequest, QaService, QuestionUnderstanding};
use kgqan_benchmarks::kg::{GeneratedKg, KgFlavor, KgScale};
use kgqan_endpoint::InProcessEndpoint;

fn service_workload(latency: Duration) -> (QaService, Vec<AnswerRequest>) {
    let kg = GeneratedKg::generate(KgFlavor::Dbpedia10, KgScale::tiny());
    let endpoint = InProcessEndpoint::new("DBpedia", kg.store.clone()).with_latency(latency);
    // The semantic cache is disabled here on purpose: this bench measures
    // how batching overlaps *endpoint round-trips*, and a warm cache would
    // absorb them all after the first iteration (the cache's own effect is
    // measured by the `kgqan_cache` bench).
    let service = QaService::builder()
        .understanding(QuestionUnderstanding::train_default())
        .endpoint(Arc::new(endpoint))
        .no_cache()
        .build()
        .expect("single registered KG");

    let requests: Vec<AnswerRequest> = (0..4)
        .flat_map(|i| {
            let person = &kg.facts.people[i];
            let country = &kg.facts.countries[i];
            [
                AnswerRequest::new(format!("Who is the spouse of {}?", person.name)),
                AnswerRequest::new(format!("Which city is the capital of {}?", country.name)),
            ]
        })
        .collect();
    (service, requests)
}

fn qa_service(c: &mut Criterion) {
    let (service, requests) = service_workload(Duration::ZERO);
    // A "remote" KG: every endpoint round-trip pays an injected latency, so
    // batching hides round-trips behind each other instead of serialising
    // them (this is where `answer_batch` earns its thread pool; on an
    // in-memory KG the per-request work is too small to amortise spawns).
    let (slow_service, slow_requests) = service_workload(Duration::from_micros(500));

    let mut group = c.benchmark_group("kgqan_service");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));
    group.bench_function("sequential_answers", |b| {
        b.iter(|| {
            for request in &requests {
                criterion::black_box(service.answer(request.clone()).unwrap());
            }
        })
    });
    group.bench_function("answer_batch", |b| {
        b.iter(|| criterion::black_box(service.answer_batch(&requests)))
    });
    group.bench_function("sequential_answers_slow_kg", |b| {
        b.iter(|| {
            for request in &slow_requests {
                criterion::black_box(slow_service.answer(request.clone()).unwrap());
            }
        })
    });
    group.bench_function("answer_batch_slow_kg", |b| {
        b.iter(|| criterion::black_box(slow_service.answer_batch(&slow_requests)))
    });
    group.finish();
}

criterion_group!(benches, qa_service);
criterion_main!(area = "service"; benches);
