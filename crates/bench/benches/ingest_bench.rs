//! Criterion micro-benchmarks for the live-KG ingestion path: batched
//! epoch publication, incremental planner-stats maintenance versus the
//! naive full rescan, and read latency while a writer is sustaining
//! ingestion (readers pin snapshots and must never block).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kgqan_endpoint::{InProcessEndpoint, SparqlEndpoint};
use kgqan_rdf::{IngestBatch, LiveStore, Store, Term, Triple};
use kgqan_sparql::parse_query;

const PRED_A: &str = "http://example.org/ontology/a";
const PRED_B: &str = "http://example.org/ontology/b";

/// `count` distinct pair-joined triples per batch, disjoint across `k`.
fn batch_triples(k: usize, count: usize) -> Vec<Triple> {
    (0..count)
        .flat_map(|i| {
            let s = Term::iri(format!("http://example.org/resource/s{k}_{i}"));
            let v = Term::iri(format!("http://example.org/resource/v{k}_{i}"));
            [
                Triple::new(s.clone(), Term::iri(PRED_A), v.clone()),
                Triple::new(s, Term::iri(PRED_B), v),
            ]
        })
        .collect()
}

/// End-to-end batched ingest throughput: every iteration starts from an
/// empty live store and publishes a fixed ladder of epochs, so the work per
/// iteration is identical (no drift as a shared store would grow).
fn batched_ingest(c: &mut Criterion) {
    const BATCHES: usize = 64;
    const PAIRS_PER_BATCH: usize = 4;
    let prepared: Vec<Vec<Triple>> = (0..BATCHES)
        .map(|k| batch_triples(k, PAIRS_PER_BATCH))
        .collect();

    let mut group = c.benchmark_group("ingest_batched");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    group.bench_function(
        BenchmarkId::new(
            "publish_epochs",
            format!("{BATCHES}x{PAIRS_PER_BATCH}pairs"),
        ),
        |b| {
            b.iter(|| {
                let live = LiveStore::new(Store::new());
                for triples in &prepared {
                    live.ingest(IngestBatch::from(triples.clone())).unwrap();
                }
                assert_eq!(live.epoch(), BATCHES as u64);
                live.snapshot().len()
            })
        },
    );
    group.finish();
}

/// The tentpole's stats claim, measured head-to-head on the same epoch
/// ladder: a [`LiveStore`] folds each batch's delta into its maintenance
/// state (`O(batch)` per epoch), while the naive alternative rescans the
/// whole graph to rebuild [`kgqan_rdf::PlannerStats`] after every batch
/// (`O(graph)` per epoch).  Both leave every epoch with warm stats.
fn stats_maintenance(c: &mut Criterion) {
    const BATCHES: usize = 48;
    const PAIRS_PER_BATCH: usize = 8;
    let prepared: Vec<Vec<Triple>> = (0..BATCHES)
        .map(|k| batch_triples(k, PAIRS_PER_BATCH))
        .collect();
    // Both paths start from the same compacted base graph: incremental
    // maintenance costs O(batch) per epoch regardless of base size, the
    // rescan costs O(base + delta) per epoch.  (Compacting up front makes
    // the per-iteration clone an `Arc`-sharing copy, not a rebuild.)
    let seed = {
        let mut s = Store::new();
        for k in 0..200 {
            s.insert_all(batch_triples(1_000 + k, 4));
        }
        s.compact();
        s
    };

    let mut group = c.benchmark_group("ingest_stats");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    group.bench_function("incremental", |b| {
        b.iter(|| {
            // Maintenance counters are lineage-shared across store clones,
            // so assert this iteration's *delta*: one bootstrap install at
            // construction, one per published epoch, and zero full scans.
            let before = seed.maintenance_counters();
            let live = LiveStore::new(seed.clone());
            for triples in &prepared {
                live.ingest(IngestBatch::from(triples.clone())).unwrap();
            }
            let counters = live.snapshot().maintenance_counters();
            assert_eq!(
                counters.stats_incremental_installs - before.stats_incremental_installs,
                BATCHES as u64 + 1
            );
            assert_eq!(counters.stats_full_scans, before.stats_full_scans);
            live.snapshot().len()
        })
    });
    group.bench_function("full_rescan", |b| {
        b.iter(|| {
            let mut store = seed.clone();
            for triples in &prepared {
                store.insert_all(triples.iter().cloned());
                // Insertion invalidated the cached stats; forcing them here
                // is the per-epoch full recompute the incremental path
                // replaces.
                let stats = store.planner_stats();
                assert!(stats.num_classes() == 0);
            }
            store.len()
        })
    });
    group.finish();
}

/// Read latency while a writer publishes epochs as fast as it can: each
/// measured query pins the then-current snapshot and joins over it.  The
/// point of the epoch design is that this curve stays flat — readers never
/// take the writer's lock.
fn query_during_sustained_ingest(c: &mut Criterion) {
    let seed = {
        let mut store = Store::new();
        for triples in (0..32).map(|k| batch_triples(k, 4)) {
            store.insert_all(triples);
        }
        store
    };
    let endpoint = Arc::new(InProcessEndpoint::new("live", seed));
    let join = parse_query(&format!(
        "SELECT ?s WHERE {{ ?s <{PRED_A}> ?v . ?s <{PRED_B}> ?v . }}"
    ))
    .unwrap();

    let mut group = c.benchmark_group("ingest_read_latency");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));

    group.bench_function(BenchmarkId::new("join_query", "quiescent"), |b| {
        b.iter(|| endpoint.query_parsed(&join).unwrap().rows().len())
    });

    let stop = Arc::new(AtomicBool::new(false));
    let writer = {
        let live = endpoint.live_store();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            // The writer grows a *different* predicate so the measured join's
            // result set stays fixed — the bench isolates snapshot-pinning
            // overhead and lock contention, not data growth.
            let mut k = 0usize;
            while !stop.load(Ordering::Acquire) {
                let s = Term::iri(format!("http://example.org/resource/w{k}"));
                let v = Term::iri(format!("http://example.org/resource/x{k}"));
                let batch = IngestBatch::new().with(Triple::new(
                    s,
                    Term::iri("http://example.org/ontology/background"),
                    v,
                ));
                live.ingest(batch).unwrap();
                k += 1;
            }
            live.epoch()
        })
    };
    group.bench_function(BenchmarkId::new("join_query", "under_ingest"), |b| {
        b.iter(|| endpoint.query_parsed(&join).unwrap().rows().len())
    });
    stop.store(true, Ordering::Release);
    let published = writer.join().expect("writer thread");
    assert!(published > 0, "the writer published at least one epoch");
    group.finish();
}

criterion_group!(
    benches,
    batched_ingest,
    stats_maintenance,
    query_during_sustained_ingest
);
criterion_main!(area = "ingest"; benches);
