//! Criterion micro-benchmarks for the JIT linker (Algorithms 1 and 2): the
//! cost of entity and relation linking against an in-process endpoint, per
//! PGP — the just-in-time cost that replaces the baselines' pre-processing.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use kgqan::pgp::PhraseGraphPattern;
use kgqan::{FineGrainedAffinity, JitLinker, LinkerConfig};
use kgqan_benchmarks::kg::{GeneratedKg, KgFlavor, KgScale};
use kgqan_endpoint::InProcessEndpoint;
use kgqan_nlp::PhraseTriplePattern;

fn jit_linking(c: &mut Criterion) {
    let kg = GeneratedKg::generate(KgFlavor::Dbpedia10, KgScale::tiny());
    let endpoint = InProcessEndpoint::new("DBpedia", kg.store.clone());
    let affinity = FineGrainedAffinity::new();
    let linker = JitLinker::new(&affinity, LinkerConfig::default());

    let person = &kg.facts.people[7];
    let single = PhraseGraphPattern::from_triples(&[PhraseTriplePattern::unknown_to_entity(
        "wife",
        person.name.clone(),
    )]);
    let water = &kg.facts.waters[1];
    let city = &kg.facts.cities[kg.facts.waters[0].nearest_city];
    let multi = PhraseGraphPattern::from_triples(&[
        PhraseTriplePattern::unknown_to_entity("flows", water.name.clone()),
        PhraseTriplePattern::unknown_to_entity("city on the shore", city.name.clone()),
    ]);

    let mut group = c.benchmark_group("jit_linking");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));
    group.bench_function("single_fact_pgp", |b| {
        b.iter(|| linker.link(&single, &endpoint).unwrap())
    });
    group.bench_function("multi_fact_pgp", |b| {
        b.iter(|| linker.link(&multi, &endpoint).unwrap())
    });
    group.finish();
}

criterion_group!(benches, jit_linking);
criterion_main!(area = "e2e"; benches);
