//! Criterion benchmarks for the cross-KG federation layer — the
//! `federate` area of the persisted perf trajectory.
//!
//! Two questions:
//!
//! 1. **Fan-out scaling** — answering one question over 1, 2, and 4
//!    registered KGs through [`FederatedEndpoint`]: the per-KG pipeline
//!    runs overlap on the batch pool, so the 4-KG cost should stay well
//!    under 4× the 1-KG cost.
//! 2. **`SERVICE` join vs. manual merge** — joining rows across two KGs
//!    with the planner's `SERVICE <kg:name>` operator vs. issuing two
//!    separate queries and hash-joining the rows by hand, the way a client
//!    without the operator would have to.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use kgqan::{QaService, QuestionUnderstanding};
use kgqan_benchmarks::kg::{GeneratedKg, KgFlavor, KgScale};
use kgqan_endpoint::{EndpointRegistry, InProcessEndpoint};
use kgqan_federate::{FederatedEndpoint, FederatedRequest};
use kgqan_rdf::{Store, Term, Triple};
use kgqan_sparql::{parse_query, QueryResults};

const SPOUSE: &str = "http://dbpedia.org/ontology/spouse";
const BIRTH_PLACE: &str = "http://dbpedia.org/ontology/birthPlace";

/// A federation of `n` mirrors of the same generated KG, plus a question
/// every mirror can answer (full agreement: the merge path does maximal
/// dedup work).
fn federation_of(n: usize) -> (FederatedEndpoint, String) {
    let kg = GeneratedKg::generate(KgFlavor::Dbpedia10, KgScale::tiny());
    let question = format!("Who is the spouse of {}?", kg.facts.people[3].name);
    let mut builder = QaService::builder()
        .understanding(QuestionUnderstanding::train_default())
        .no_cache();
    for i in 0..n {
        builder = builder.endpoint(Arc::new(InProcessEndpoint::new(
            format!("KG{i}"),
            kg.store.clone(),
        )));
    }
    let service = builder.build().expect("federation builds");
    (FederatedEndpoint::new(service), question)
}

fn fan_out(c: &mut Criterion) {
    let mut group = c.benchmark_group("federate_fan_out");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));
    for n in [1usize, 2, 4] {
        let (federated, question) = federation_of(n);
        group.bench_function(format!("kgs{n}"), |b| {
            b.iter(|| {
                let response = federated
                    .ask(FederatedRequest::new(question.clone()))
                    .expect("federated ask");
                assert!(!response.answers.is_empty());
                criterion::black_box(response)
            })
        });
    }
    group.finish();
}

/// Two KGs whose rows only join across the boundary: `People` holds
/// `person —spouse→ partner`, `Places` holds `partner —birthPlace→ city`.
fn join_registry(pairs: usize) -> EndpointRegistry {
    let mut people = Store::new();
    let mut places = Store::new();
    for k in 0..pairs {
        let person = Term::iri(format!("http://e/person/{k}"));
        let partner = Term::iri(format!("http://e/partner/{k}"));
        let city = Term::iri(format!("http://e/city/{}", k % 7));
        people.insert(Triple::new(person, Term::iri(SPOUSE), partner.clone()));
        places.insert(Triple::new(partner, Term::iri(BIRTH_PLACE), city));
    }
    let mut registry = EndpointRegistry::new();
    registry.register(Arc::new(InProcessEndpoint::new("People", people)));
    registry.register(Arc::new(InProcessEndpoint::new("Places", places)));
    registry
}

fn service_join(c: &mut Criterion) {
    let registry = join_registry(256);
    let people = registry.get("People").expect("registered");
    let places = registry.get("Places").expect("registered");

    let service_query = parse_query(&format!(
        "SELECT ?s ?spouse ?place WHERE {{ ?s <{SPOUSE}> ?spouse . \
         SERVICE <kg:Places> {{ ?spouse <{BIRTH_PLACE}> ?place . }} }}"
    ))
    .expect("service query parses");
    let local_query = parse_query(&format!(
        "SELECT ?s ?spouse WHERE {{ ?s <{SPOUSE}> ?spouse . }}"
    ))
    .expect("local query parses");
    let remote_query = parse_query(&format!(
        "SELECT ?spouse ?place WHERE {{ ?spouse <{BIRTH_PLACE}> ?place . }}"
    ))
    .expect("remote query parses");

    let mut group = c.benchmark_group("federate_service_join");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));
    group.bench_function("service_operator", |b| {
        b.iter(|| {
            let traced = people
                .query_federated(&service_query, &registry)
                .expect("SERVICE join");
            let QueryResults::Solutions(rows) = &traced.results else {
                panic!("SELECT expected");
            };
            assert_eq!(rows.rows().len(), 256);
            criterion::black_box(traced.results)
        })
    });
    group.bench_function("manual_two_query_merge", |b| {
        b.iter(|| {
            // What a client without the operator does: pull both sides
            // whole and hash-join on the shared variable.
            let QueryResults::Solutions(local) =
                people.query_parsed(&local_query).expect("local side")
            else {
                panic!("SELECT expected");
            };
            let QueryResults::Solutions(remote) =
                places.query_parsed(&remote_query).expect("remote side")
            else {
                panic!("SELECT expected");
            };
            let mut by_spouse: HashMap<String, Vec<&Term>> = HashMap::new();
            for row in remote.rows() {
                if let (Some(spouse), Some(place)) = (row.get("spouse"), row.get("place")) {
                    by_spouse.entry(spouse.to_string()).or_default().push(place);
                }
            }
            let mut joined = 0usize;
            for row in local.rows() {
                if let Some(spouse) = row.get("spouse") {
                    joined += by_spouse.get(&spouse.to_string()).map_or(0, Vec::len);
                }
            }
            assert_eq!(joined, 256);
            criterion::black_box(joined)
        })
    });
    group.finish();
}

criterion_group!(benches, fan_out, service_join);
criterion_main!(area = "federate"; benches);
