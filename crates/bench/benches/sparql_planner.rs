//! Criterion benchmarks for the cost-based query planner and streaming
//! executor:
//!
//! * **join order** — the same two-pattern query written in its worst order
//!   (huge scan first) and its best order (selective lookup first), both
//!   through the planner, plus the naive AST-order evaluator on the worst
//!   order.  The planner must make the worst spelling perform like the best
//!   one (the acceptance bar is ~2×); the naive evaluator shows the cost of
//!   not planning.
//! * **LIMIT early exit** — a `LIMIT 10` scan over tens of thousands of
//!   matching triples: the streaming executor stops after ~10 index
//!   entries, the naive evaluator materialises everything and truncates.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use kgqan_rdf::{Store, Term, Triple};
use kgqan_sparql::{execute, execute_naive, parse_query, Planner, Query};

/// 20k people born across 40 cities (500 each), one tiny club with 4
/// members: the selectivity skew that makes join order matter.
fn skewed_store() -> Store {
    let mut store = Store::new();
    let born = Term::iri("http://e/bornIn");
    let member = Term::iri("http://e/memberOf");
    let club = Term::iri("http://e/club");
    for i in 0..20_000 {
        let person = Term::iri(format!("http://e/person{i}"));
        let city = Term::iri(format!("http://e/city{}", i % 40));
        store.insert(Triple::new(person.clone(), born.clone(), city));
        if i % 5_000 == 0 {
            store.insert(Triple::new(person, member.clone(), club.clone()));
        }
    }
    store
}

fn parsed(query: &str) -> Query {
    parse_query(query).expect("bench query parses")
}

fn join_order(c: &mut Criterion) {
    let store = skewed_store();
    // Worst spelling: the 20k-row bornIn scan listed before the 4-row
    // memberOf lookup.
    let worst = parsed(
        "SELECT ?p ?c WHERE { ?p <http://e/bornIn> ?c . \
         ?p <http://e/memberOf> <http://e/club> . }",
    );
    // Best spelling: selective pattern first.
    let best = parsed(
        "SELECT ?p ?c WHERE { ?p <http://e/memberOf> <http://e/club> . \
         ?p <http://e/bornIn> ?c . }",
    );
    // Warm the store's planner-stats cache outside the timing loops.
    let _ = store.planner_stats();

    let mut group = c.benchmark_group("sparql_planner_join_order");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(3));
    group.bench_function("worst_order_planned", |b| {
        b.iter(|| execute(&store, &worst).unwrap())
    });
    group.bench_function("best_order_planned", |b| {
        b.iter(|| execute(&store, &best).unwrap())
    });
    group.bench_function("worst_order_naive", |b| {
        b.iter(|| execute_naive(&store, &worst).unwrap())
    });
    group.finish();
}

fn limit_early_exit(c: &mut Criterion) {
    let store = skewed_store();
    let query = parsed("SELECT ?p WHERE { ?p <http://e/bornIn> ?c . } LIMIT 10");
    let _ = store.planner_stats();

    // Sanity: the streaming executor must only touch ~LIMIT index entries.
    let run = Planner::new(&store).plan(&query).execute().unwrap();
    assert_eq!(run.results.rows().len(), 10);
    assert!(
        run.metrics.rows_scanned <= 10,
        "LIMIT 10 scanned {} rows",
        run.metrics.rows_scanned
    );

    let mut group = c.benchmark_group("sparql_planner_limit");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(3));
    group.bench_function("limit10_streaming", |b| {
        b.iter(|| execute(&store, &query).unwrap())
    });
    group.bench_function("limit10_naive_materialized", |b| {
        b.iter(|| execute_naive(&store, &query).unwrap())
    });
    group.finish();
}

criterion_group!(benches, join_order, limit_early_exit);
criterion_main!(area = "planner"; benches);
