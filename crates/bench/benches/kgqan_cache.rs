//! Criterion benchmark for the cross-request semantic cache: one
//! `QaService` answering a repeated/overlapping question workload with a
//! cold namespace, a warm namespace, and no cache at all, reporting the
//! warm hit rate.  The warm case is the ROADMAP's heavy-traffic scenario:
//! many users asking similar questions of the same KG.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use kgqan::{AnswerRequest, CacheConfig, QaService, QuestionUnderstanding};
use kgqan_benchmarks::kg::{GeneratedKg, KgFlavor, KgScale};
use kgqan_endpoint::InProcessEndpoint;

/// Per-round-trip latency injected into the endpoint: repeated questions
/// only pay it on cache misses, which is exactly what the cache removes.
const ENDPOINT_LATENCY: Duration = Duration::from_micros(200);

fn workload(kg: &GeneratedKg) -> Vec<AnswerRequest> {
    // Four distinct questions, each asked twice: half the workload overlaps.
    (0..4)
        .flat_map(|i| {
            let person = &kg.facts.people[i];
            let question = format!("Who is the spouse of {}?", person.name);
            [
                AnswerRequest::new(question.clone()),
                AnswerRequest::new(question),
            ]
        })
        .collect()
}

fn cached_service(kg: &GeneratedKg, understanding: Arc<QuestionUnderstanding>) -> QaService {
    QaService::builder()
        .shared_understanding(understanding)
        .endpoint(Arc::new(
            InProcessEndpoint::new("DBpedia", kg.store.clone()).with_latency(ENDPOINT_LATENCY),
        ))
        .cache(CacheConfig::default())
        .build()
        .expect("single registered KG")
}

fn kgqan_cache(c: &mut Criterion) {
    let kg = GeneratedKg::generate(KgFlavor::Dbpedia10, KgScale::tiny());
    let understanding = Arc::new(QuestionUnderstanding::train_default());
    let requests = workload(&kg);

    let uncached = QaService::builder()
        .shared_understanding(Arc::clone(&understanding))
        .endpoint(Arc::new(
            InProcessEndpoint::new("DBpedia", kg.store.clone()).with_latency(ENDPOINT_LATENCY),
        ))
        .no_cache()
        .build()
        .expect("single registered KG");
    let cold = cached_service(&kg, Arc::clone(&understanding));
    let warm = cached_service(&kg, Arc::clone(&understanding));
    // Pre-warm: one full pass populates the namespace.
    for request in &requests {
        warm.answer(request.clone()).unwrap();
    }

    let mut group = c.benchmark_group("kgqan_cache");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));
    group.bench_function("uncached_repeated_questions", |b| {
        b.iter(|| {
            for request in &requests {
                criterion::black_box(uncached.answer(request.clone()).unwrap());
            }
        })
    });
    group.bench_function("cold_cache_repeated_questions", |b| {
        b.iter(|| {
            // Flush before each pass so every iteration starts cold.
            cold.invalidate_cache("DBpedia");
            for request in &requests {
                criterion::black_box(cold.answer(request.clone()).unwrap());
            }
        })
    });
    group.bench_function("warm_cache_repeated_questions", |b| {
        b.iter(|| {
            for request in &requests {
                criterion::black_box(warm.answer(request.clone()).unwrap());
            }
        })
    });
    group.finish();

    let stats = warm
        .cache_report()
        .kg("DBpedia")
        .copied()
        .unwrap_or_default();
    println!(
        "kgqan_cache: warm namespace hit rate {:.1}% ({} hits / {} lookups)",
        stats.hit_rate() * 100.0,
        stats.hits,
        stats.hits + stats.misses
    );
}

criterion_group!(benches, kgqan_cache);
criterion_main!(area = "cache"; benches);
