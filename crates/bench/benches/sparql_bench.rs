//! Criterion micro-benchmarks for the SPARQL layer: parsing, BGP joins,
//! OPTIONAL evaluation and the `bif:contains` text-search path used by the
//! JIT linker.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use kgqan_benchmarks::kg::{GeneratedKg, KgFlavor, KgScale};
use kgqan_sparql::{execute_query, parse_query};

fn parsing(c: &mut Criterion) {
    let query = r#"PREFIX dbv: <http://dbpedia.org/resource/>
        SELECT DISTINCT ?sea ?type WHERE {
          ?sea <http://dbpedia.org/property/outflow> dbv:Danish_straits .
          ?sea <http://dbpedia.org/ontology/nearestCity> dbv:Kaliningrad .
          OPTIONAL { ?sea a ?type . }
          FILTER (CONTAINS(?name, "sea") && ?pop > 100)
        } LIMIT 40"#;
    let mut group = c.benchmark_group("sparql_parse");
    group
        .sample_size(50)
        .measurement_time(Duration::from_secs(3));
    group.bench_function("figure1_style_query", |b| {
        b.iter(|| parse_query(query).unwrap())
    });
    group.finish();
}

fn execution(c: &mut Criterion) {
    let kg = GeneratedKg::generate(KgFlavor::Dbpedia10, KgScale::tiny());
    let store = &kg.store;
    let person = &kg.facts.people[11];
    let voc = kg.predicates.as_ref().unwrap();

    let mut group = c.benchmark_group("sparql_execute");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(3));

    let single = format!(
        "SELECT ?u WHERE {{ <{}> <{}> ?u . }}",
        person.iri.as_iri().unwrap(),
        voc.birth_place
    );
    group.bench_function("single_triple_lookup", |b| {
        b.iter(|| execute_query(store, &single).unwrap())
    });

    let join = format!(
        "SELECT ?u ?type WHERE {{ ?u <{}> ?c . ?c <{}> ?m . OPTIONAL {{ ?u a ?type . }} }} LIMIT 50",
        voc.capital, voc.mayor
    );
    group.bench_function("two_hop_join_with_optional", |b| {
        b.iter(|| execute_query(store, &join).unwrap())
    });

    let text = r#"SELECT DISTINCT ?v ?d WHERE { ?v ?p ?d . ?d <bif:contains> "'baltic' OR 'sea'" . } LIMIT 400"#;
    group.bench_function("bif_contains_linking_probe", |b| {
        b.iter(|| execute_query(store, text).unwrap())
    });
    group.finish();
}

criterion_group!(benches, parsing, execution);
criterion_main!(area = "sparql"; benches);
