//! Criterion benchmark for the full KGQAn pipeline (question in, filtered
//! answers out) — the per-question latency whose breakdown Figure 7 reports.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use kgqan::{KgqanConfig, KgqanPlatform, QuestionUnderstanding};
use kgqan_benchmarks::kg::{GeneratedKg, KgFlavor, KgScale};
use kgqan_endpoint::InProcessEndpoint;

fn end_to_end(c: &mut Criterion) {
    let kg = GeneratedKg::generate(KgFlavor::Dbpedia10, KgScale::tiny());
    let endpoint = InProcessEndpoint::new("DBpedia", kg.store.clone());
    let platform = KgqanPlatform::with_parts(
        QuestionUnderstanding::train_default(),
        KgqanConfig::default(),
    );
    let person = &kg.facts.people[3];
    let country = &kg.facts.countries[2];
    let single = format!("Who is the spouse of {}?", person.name);
    let typed = format!("Which city is the capital of {}?", country.name);

    let mut group = c.benchmark_group("kgqan_end_to_end");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));
    group.bench_function("single_fact_question", |b| {
        b.iter(|| platform.answer(&single, &endpoint).unwrap())
    });
    group.bench_function("fact_with_type_question", |b| {
        b.iter(|| platform.answer(&typed, &endpoint).unwrap())
    });
    group.finish();
}

criterion_group!(benches, end_to_end);
criterion_main!(area = "e2e"; benches);
