//! Criterion micro-benchmarks for the semantic-affinity models (Equation 1):
//! fine-grained word-pair affinity vs the coarse-grained sentence-embedding
//! variant — the design choice ablated in Table 4.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use kgqan::{CoarseGrainedAffinity, FineGrainedAffinity, SemanticAffinity};

fn affinity(c: &mut Criterion) {
    let fg = FineGrainedAffinity::new();
    let cg = CoarseGrainedAffinity::new();
    let pairs = [
        ("city on the shore", "nearest city"),
        ("wife", "spouse"),
        ("flow", "outflow"),
        ("author of the paper", "authored by"),
        ("2279569217", "creator"),
    ];

    let mut group = c.benchmark_group("semantic_affinity");
    group
        .sample_size(30)
        .measurement_time(Duration::from_secs(3));
    group.bench_function("fine_grained_eq1", |b| {
        b.iter(|| pairs.iter().map(|(a, x)| fg.score(a, x)).sum::<f32>())
    });
    group.bench_function("coarse_grained_sentence", |b| {
        b.iter(|| pairs.iter().map(|(a, x)| cg.score(a, x)).sum::<f32>())
    });
    group.finish();
}

criterion_group!(benches, affinity);
criterion_main!(area = "e2e"; benches);
