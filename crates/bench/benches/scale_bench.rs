//! `scale` area: morsel-driven parallel multi-hop joins on a large
//! Zipf-skewed synthetic KG ([`kgqan_bench::kggen`]).
//!
//! Each query runs at degrees of parallelism 1/2/4/8 (`max_dop`; 1 forces
//! the sequential path), so the committed baseline records the speedup
//! curve of the morsel executor on the build machine.  The KG is 2M triples
//! in full mode and ~60k under `KGQAN_BENCH_SMOKE`.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kgqan_bench::kggen::{ZipfKg, ZipfKgConfig, CATEGORY, LINKS};
use kgqan_sparql::{parse_query, ParallelConfig, Planner};

const DOPS: [usize; 4] = [1, 2, 4, 8];

/// A `ParallelConfig` that parallelises whenever `max_dop` allows: the
/// per-worker row threshold is low enough that even the smoke KG's driver
/// scan (~50k rows) fans out.
fn config_for(dop: usize) -> ParallelConfig {
    ParallelConfig {
        max_dop: dop,
        rows_per_worker: 8_192.0,
        min_page_rows: 0,
        ..ParallelConfig::default()
    }
}

fn multi_hop_joins(c: &mut Criterion) {
    let kg = ZipfKg::generate(if criterion::smoke_mode() {
        ZipfKgConfig::scale_smoke()
    } else {
        ZipfKgConfig::scale_full()
    });
    let snapshot = &kg.snapshot;

    // Closed two-hop (mutual links): the driver scans every `links` edge
    // and the second step is a fully-bound point probe, so scan throughput
    // dominates and the output stays small — the pure-speedup shape.
    let mutual = parse_query(&format!(
        "SELECT ?a ?b WHERE {{ ?a <{LINKS}> ?b . ?b <{LINKS}> ?a . }}"
    ))
    .expect("mutual-links query parses");

    let mut group = c.benchmark_group("scale_closed_two_hop");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(1));
    for dop in DOPS {
        let planner = Planner::for_shared_snapshot(snapshot).with_parallelism(config_for(dop));
        let plan = planner.plan(&mutual);
        group.bench_function(BenchmarkId::new("mutual_links", dop), |b| {
            b.iter(|| plan.execute().unwrap())
        });
    }
    group.finish();

    // Paged two-hop: join every `links` edge to its target's category and
    // stop after one result page.  Measures time-to-page: the sequential
    // path stops as soon as the page fills, the parallel path pays the
    // morsel-local page caps — the honest cost of paging under fan-out.
    let paged = parse_query(&format!(
        "SELECT ?a ?c WHERE {{ ?a <{LINKS}> ?b . ?b <{CATEGORY}> ?c . }} LIMIT 10000"
    ))
    .expect("paged two-hop query parses");

    let mut group = c.benchmark_group("scale_paged_two_hop");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(1));
    for dop in DOPS {
        let planner = Planner::for_shared_snapshot(snapshot).with_parallelism(config_for(dop));
        let plan = planner.plan(&paged);
        group.bench_function(BenchmarkId::new("links_to_category", dop), |b| {
            b.iter(|| plan.execute().unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, multi_hop_joins);
criterion_main!(area = "scale"; benches);
