//! Standalone entity/relation-linking evaluation (Figure 9).
//!
//! The paper evaluates the linking step in isolation on the labelled
//! LC-QuAD 1.0 linking dataset of \[18]: given the gold question phrases, how
//! well does each system map them to the right vertex / predicate?  Our
//! benchmark questions carry the same gold pairs ([`LinkingGold`](kgqan_benchmarks::benchmark::LinkingGold)), so the
//! evaluation asks each system's linker to resolve the gold phrases and
//! scores the result with precision / recall / F1 over the returned sets.

use kgqan::pgp::PhraseGraphPattern;
use kgqan::{FineGrainedAffinity, JitLinker, LinkerConfig};
use kgqan_baselines::{EdgqaSystem, GAnswerSystem};
use kgqan_benchmarks::suite::BenchmarkInstance;
use kgqan_nlp::{PhraseNode, PhraseTriplePattern};
use kgqan_rdf::Term;

/// Precision / recall / F1 of a linking run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LinkingScores {
    /// Entity-linking precision.
    pub entity_precision: f64,
    /// Entity-linking recall.
    pub entity_recall: f64,
    /// Entity-linking F1.
    pub entity_f1: f64,
    /// Relation-linking precision.
    pub relation_precision: f64,
    /// Relation-linking recall.
    pub relation_recall: f64,
    /// Relation-linking F1.
    pub relation_f1: f64,
}

fn prf(correct: usize, returned: usize, gold: usize) -> (f64, f64, f64) {
    let p = if returned == 0 {
        0.0
    } else {
        correct as f64 / returned as f64
    };
    let r = if gold == 0 {
        0.0
    } else {
        correct as f64 / gold as f64
    };
    let f1 = if p + r > 0.0 {
        2.0 * p * r / (p + r)
    } else {
        0.0
    };
    (p, r, f1)
}

/// Which linker to evaluate.
pub enum LinkerUnderTest<'a> {
    /// KGQAn's JIT linker (no pre-processing; talks to the endpoint).
    Kgqan,
    /// gAnswer's pre-built URI-token index.
    GAnswer(&'a GAnswerSystem),
    /// EDGQA's pre-built label index.
    Edgqa(&'a EdgqaSystem),
}

/// Evaluate one linker over the gold linking pairs of a benchmark.
pub fn evaluate_linking(linker: &LinkerUnderTest, instance: &BenchmarkInstance) -> LinkingScores {
    let mut entity_correct = 0usize;
    let mut entity_returned = 0usize;
    let mut entity_gold = 0usize;
    let mut relation_correct = 0usize;
    let mut relation_returned = 0usize;
    let mut relation_gold = 0usize;

    let affinity = FineGrainedAffinity::new();
    let jit = JitLinker::new(&affinity, LinkerConfig::default());

    for question in &instance.benchmark.questions {
        for (phrase, gold_vertex) in &question.linking.entities {
            entity_gold += 1;
            let linked: Option<Term> = match linker {
                LinkerUnderTest::Kgqan => {
                    // Link an isolated entity node, exactly Algorithm 1.
                    let pgp = PhraseGraphPattern::from_triples(&[PhraseTriplePattern::new(
                        PhraseNode::Unknown(1),
                        "related to",
                        PhraseNode::Phrase(phrase.clone()),
                    )]);
                    jit.link(&pgp, instance.endpoint.as_ref())
                        .ok()
                        .and_then(|agp| {
                            let node = agp
                                .pgp
                                .nodes()
                                .iter()
                                .find(|n| !n.is_unknown())
                                .map(|n| n.id)?;
                            agp.vertices_of(node).first().map(|rv| rv.vertex.clone())
                        })
                }
                LinkerUnderTest::GAnswer(sys) => sys.link_entity(phrase),
                LinkerUnderTest::Edgqa(sys) => sys.link_entity(phrase),
            };
            if let Some(vertex) = linked {
                entity_returned += 1;
                if &vertex == gold_vertex {
                    entity_correct += 1;
                }
            }
        }

        for (phrase, gold_predicate) in &question.linking.relations {
            relation_gold += 1;
            let candidates: Vec<Term> = match linker {
                LinkerUnderTest::Kgqan => {
                    // Link the relation in the context of the question's first
                    // gold entity, exactly Algorithm 2's anchoring.
                    let Some((entity_phrase, _)) = question.linking.entities.first() else {
                        continue;
                    };
                    let pgp = PhraseGraphPattern::from_triples(&[PhraseTriplePattern::new(
                        PhraseNode::Unknown(1),
                        phrase.clone(),
                        PhraseNode::Phrase(entity_phrase.clone()),
                    )]);
                    jit.link(&pgp, instance.endpoint.as_ref())
                        .map(|agp| {
                            agp.predicates_of(0)
                                .iter()
                                .take(1)
                                .map(|rp| rp.predicate.clone())
                                .collect()
                        })
                        .unwrap_or_default()
                }
                LinkerUnderTest::GAnswer(sys) => {
                    sys.link_relation(phrase).into_iter().take(1).collect()
                }
                LinkerUnderTest::Edgqa(sys) => {
                    let Some((_, gold_entity)) = question.linking.entities.first() else {
                        continue;
                    };
                    sys.link_relation(phrase, gold_entity, instance.endpoint.as_ref())
                        .into_iter()
                        .take(1)
                        .collect()
                }
            };
            if !candidates.is_empty() {
                relation_returned += 1;
                if candidates.contains(gold_predicate) {
                    relation_correct += 1;
                }
            }
        }
    }

    let (entity_precision, entity_recall, entity_f1) =
        prf(entity_correct, entity_returned, entity_gold);
    let (relation_precision, relation_recall, relation_f1) =
        prf(relation_correct, relation_returned, relation_gold);
    LinkingScores {
        entity_precision,
        entity_recall,
        entity_f1,
        relation_precision,
        relation_recall,
        relation_f1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgqan_baselines::QaSystem;
    use kgqan_benchmarks::{BenchmarkSuite, KgFlavor, SuiteScale};

    #[test]
    fn kgqan_linking_is_strong_on_lcquad_like_benchmark() {
        let instance = BenchmarkSuite::build_one(KgFlavor::Dbpedia04, SuiteScale::Smoke);
        let kgqan_scores = evaluate_linking(&LinkerUnderTest::Kgqan, &instance);
        assert!(
            kgqan_scores.entity_f1 > 0.5,
            "KGQAn entity linking too weak: {kgqan_scores:?}"
        );
        assert!(
            kgqan_scores.relation_f1 > 0.3,
            "KGQAn relation linking too weak: {kgqan_scores:?}"
        );
    }

    #[test]
    fn kgqan_entity_linking_beats_ganswer_on_opaque_uri_kgs() {
        // The discriminating case of the paper: gAnswer's URI-token index
        // cannot link mentions on MAG, while KGQAn's JIT text-index linking
        // still can (§7.2.3).
        let instance = BenchmarkSuite::build_one(KgFlavor::Mag, SuiteScale::Smoke);
        let kgqan_scores = evaluate_linking(&LinkerUnderTest::Kgqan, &instance);
        let mut ganswer = GAnswerSystem::new();
        ganswer.preprocess(instance.endpoint.as_ref());
        let ganswer_scores = evaluate_linking(&LinkerUnderTest::GAnswer(&ganswer), &instance);
        assert!(kgqan_scores.entity_f1 > ganswer_scores.entity_f1);
        assert!(
            kgqan_scores.entity_f1 > 0.4,
            "KGQAn should still link on MAG: {kgqan_scores:?}"
        );
        assert!(
            ganswer_scores.entity_f1 < 0.1,
            "gAnswer should fail on MAG: {ganswer_scores:?}"
        );
    }

    #[test]
    fn prf_handles_empty_sets() {
        assert_eq!(prf(0, 0, 0), (0.0, 0.0, 0.0));
        assert_eq!(prf(1, 1, 1), (1.0, 1.0, 1.0));
        let (p, r, f1) = prf(1, 2, 4);
        assert!((p - 0.5).abs() < 1e-9);
        assert!((r - 0.25).abs() < 1e-9);
        assert!(f1 > 0.0);
    }
}
