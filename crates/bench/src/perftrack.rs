//! The persisted perf-trajectory subsystem: merge the per-benchmark JSONL
//! records emitted by the criterion shim into per-area `BENCH_<area>.json`
//! artifacts, and diff a fresh run against the committed baselines with
//! noise-aware thresholds.
//!
//! The flow, end to end:
//!
//! 1. `cargo bench` with `KGQAN_BENCH_JSON=<path>` set — every benchmark
//!    appends one JSON line with its per-sample statistics, tagged with the
//!    area its executable declared (`criterion_main!(area = "store"; …)`).
//! 2. The `perf_report` binary runs the suite, parses the JSONL with
//!    [`parse_jsonl`], attaches deterministic rows-scanned [`planner
//!    probes`](planner_probes) pulled from `query_traced`, and writes one
//!    [`AreaReport`] per area ([`merge_records`] / [`AreaReport::to_json`]).
//! 3. The `perf_diff` binary loads baseline and current reports
//!    ([`AreaReport::from_json`]), compares them ([`diff_reports`]) under a
//!    [`DiffConfig`], prints a markdown table ([`markdown_table`]) and
//!    fails CI when any row crosses the fail threshold.
//!
//! Timing metrics are gated on the p50 (medians survive CI noise better
//! than means); rows-scanned probe counters are deterministic, so they get
//! a much tighter threshold than wall-clock numbers.

use std::fmt::Write as _;

use kgqan_endpoint::{InProcessEndpoint, SparqlEndpoint};
use kgqan_rdf::{Store, Term, Triple};
use kgqan_sparql::parse_query;

use crate::perfjson::{write_json_number, write_json_string, Json};

/// Schema identifier stamped into every artifact, bumped on layout changes.
pub const SCHEMA: &str = "kgqan-bench-report/v1";

/// The benchmark areas with committed baselines, in report order.
pub const AREAS: [&str; 10] = [
    "store", "sparql", "planner", "service", "cache", "ingest", "e2e", "serve", "federate", "scale",
];

/// One benchmark's statistics, as emitted by the criterion shim (one JSONL
/// line) and as stored in the merged per-area artifacts.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Perf-trajectory area (`store`, `sparql`, `planner`, …).
    pub area: String,
    /// Benchmark group name (the `benchmark_group` argument).
    pub group: String,
    /// Benchmark id within the group.
    pub bench: String,
    /// Whether the run used the smoke-mode iteration budget.
    pub smoke: bool,
    /// Number of timed sample batches.
    pub samples: u64,
    /// Total routine iterations across all timed batches.
    pub iters: u64,
    /// Mean per-iteration time in nanoseconds.
    pub mean_ns: f64,
    /// Median per-iteration time in nanoseconds.
    pub p50_ns: f64,
    /// 95th-percentile per-iteration time in nanoseconds.
    pub p95_ns: f64,
    /// Fastest sample's per-iteration time in nanoseconds.
    pub min_ns: f64,
    /// Throughput implied by the mean (`1e9 / mean_ns`).
    pub iters_per_sec: f64,
}

impl BenchRecord {
    fn from_json(value: &Json, context: &str) -> Result<BenchRecord, String> {
        let str_field = |key: &str| -> Result<String, String> {
            value
                .get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("{context}: missing string field '{key}'"))
        };
        let num_field = |key: &str| -> Result<f64, String> {
            value
                .get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("{context}: missing numeric field '{key}'"))
        };
        Ok(BenchRecord {
            area: str_field("area")?,
            group: str_field("group")?,
            bench: str_field("bench")?,
            smoke: value
                .get("smoke")
                .and_then(Json::as_bool)
                .ok_or_else(|| format!("{context}: missing boolean field 'smoke'"))?,
            samples: num_field("samples")? as u64,
            iters: num_field("iters")? as u64,
            mean_ns: num_field("mean_ns")?,
            p50_ns: num_field("p50_ns")?,
            p95_ns: num_field("p95_ns")?,
            min_ns: num_field("min_ns")?,
            iters_per_sec: num_field("iters_per_sec")?,
        })
    }

    fn write_json(&self, out: &mut String, indent: &str) {
        let _ = write!(out, "{indent}{{\"group\": ");
        write_json_string(out, &self.group);
        out.push_str(", \"bench\": ");
        write_json_string(out, &self.bench);
        let _ = write!(
            out,
            ", \"smoke\": {}, \"samples\": {}, \"iters\": {}, \"mean_ns\": ",
            self.smoke, self.samples, self.iters
        );
        write_json_number(out, self.mean_ns);
        out.push_str(", \"p50_ns\": ");
        write_json_number(out, self.p50_ns);
        out.push_str(", \"p95_ns\": ");
        write_json_number(out, self.p95_ns);
        out.push_str(", \"min_ns\": ");
        write_json_number(out, self.min_ns);
        out.push_str(", \"iters_per_sec\": ");
        write_json_number(out, self.iters_per_sec);
        out.push('}');
    }
}

/// Parses the JSONL file the criterion shim appends to (one benchmark
/// record per line; blank lines ignored).
pub fn parse_jsonl(text: &str) -> Result<Vec<BenchRecord>, String> {
    let mut records = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let value = Json::parse(line).map_err(|e| format!("JSONL line {}: {e}", lineno + 1))?;
        records.push(BenchRecord::from_json(
            &value,
            &format!("JSONL line {}", lineno + 1),
        )?);
    }
    Ok(records)
}

/// A deterministic executor work counter: one fixed query run through
/// `query_traced` against a fixed synthetic store. Unlike wall-clock
/// timings these are exact, so the diff gate can hold them to a tight
/// threshold — a planner regression that scans 10× the rows fails even
/// when the machine is noisy.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbeRecord {
    /// Stable probe name.
    pub name: String,
    /// Index/text-index entries the streaming executor touched.
    pub rows_scanned: u64,
    /// Result rows the query produced (sanity anchor for the probe).
    pub result_rows: u64,
}

impl ProbeRecord {
    fn from_json(value: &Json, context: &str) -> Result<ProbeRecord, String> {
        Ok(ProbeRecord {
            name: value
                .get("name")
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("{context}: missing probe field 'name'"))?,
            rows_scanned: value
                .get("rows_scanned")
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("{context}: missing probe field 'rows_scanned'"))?,
            result_rows: value
                .get("result_rows")
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("{context}: missing probe field 'result_rows'"))?,
        })
    }

    fn write_json(&self, out: &mut String, indent: &str) {
        let _ = write!(out, "{indent}{{\"name\": ");
        write_json_string(out, &self.name);
        let _ = write!(
            out,
            ", \"rows_scanned\": {}, \"result_rows\": {}}}",
            self.rows_scanned, self.result_rows
        );
    }
}

/// The merged, committed artifact for one benchmark area — the contents of
/// a root `BENCH_<area>.json` file.
#[derive(Debug, Clone, PartialEq)]
pub struct AreaReport {
    /// Artifact schema identifier ([`SCHEMA`]).
    pub schema: String,
    /// The area this report covers.
    pub area: String,
    /// Git revision of the run, from `KGQAN_GIT_REV`/`GITHUB_SHA` or
    /// `git rev-parse`; `"unknown"` when unavailable.
    pub git_rev: String,
    /// Whether the run used the smoke-mode iteration budget (the diff gate
    /// loosens its thresholds for smoke runs).
    pub smoke: bool,
    /// Benchmark statistics, sorted by group then bench id.
    pub benches: Vec<BenchRecord>,
    /// Deterministic rows-scanned probes (planner area only, today).
    pub probes: Vec<ProbeRecord>,
}

impl AreaReport {
    /// The artifact file name for an area: `BENCH_<area>.json`.
    pub fn file_name(area: &str) -> String {
        format!("BENCH_{area}.json")
    }

    /// Renders the artifact as pretty-printed JSON with a stable field
    /// order (one bench/probe per line, so committed baselines diff well).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n  \"schema\": ");
        write_json_string(&mut out, &self.schema);
        out.push_str(",\n  \"area\": ");
        write_json_string(&mut out, &self.area);
        out.push_str(",\n  \"git_rev\": ");
        write_json_string(&mut out, &self.git_rev);
        let _ = write!(out, ",\n  \"smoke\": {},\n  \"benches\": [", self.smoke);
        for (i, bench) in self.benches.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            bench.write_json(&mut out, "    ");
        }
        out.push_str(if self.benches.is_empty() {
            "]"
        } else {
            "\n  ]"
        });
        out.push_str(",\n  \"probes\": [");
        for (i, probe) in self.probes.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            probe.write_json(&mut out, "    ");
        }
        out.push_str(if self.probes.is_empty() { "]" } else { "\n  ]" });
        out.push_str("\n}\n");
        out
    }

    /// Parses an artifact produced by [`AreaReport::to_json`] (or any JSON
    /// document with the same fields).
    pub fn from_json(text: &str) -> Result<AreaReport, String> {
        let value = Json::parse(text)?;
        let schema = value
            .get("schema")
            .and_then(Json::as_str)
            .ok_or("missing 'schema'")?
            .to_string();
        let area = value
            .get("area")
            .and_then(Json::as_str)
            .ok_or("missing 'area'")?
            .to_string();
        let git_rev = value
            .get("git_rev")
            .and_then(Json::as_str)
            .unwrap_or("unknown")
            .to_string();
        let smoke = value.get("smoke").and_then(Json::as_bool).unwrap_or(false);
        let mut benches = Vec::new();
        for (i, bench) in value
            .get("benches")
            .and_then(Json::as_array)
            .unwrap_or(&[])
            .iter()
            .enumerate()
        {
            let mut record = BenchRecord::from_json2(bench, &area, &format!("bench #{i}"))?;
            record.smoke = bench.get("smoke").and_then(Json::as_bool).unwrap_or(smoke);
            benches.push(record);
        }
        let mut probes = Vec::new();
        for (i, probe) in value
            .get("probes")
            .and_then(Json::as_array)
            .unwrap_or(&[])
            .iter()
            .enumerate()
        {
            probes.push(ProbeRecord::from_json(probe, &format!("probe #{i}"))?);
        }
        Ok(AreaReport {
            schema,
            area,
            git_rev,
            smoke,
            benches,
            probes,
        })
    }
}

impl BenchRecord {
    /// Parses a merged-artifact bench entry, whose `area` lives on the
    /// enclosing report rather than the entry itself.
    fn from_json2(value: &Json, area: &str, context: &str) -> Result<BenchRecord, String> {
        let mut with_area = match value {
            Json::Obj(pairs) => Json::Obj(pairs.clone()),
            _ => return Err(format!("{context}: not an object")),
        };
        if value.get("area").is_none() {
            if let Json::Obj(pairs) = &mut with_area {
                pairs.push(("area".to_string(), Json::Str(area.to_string())));
            }
        }
        if value.get("smoke").is_none() {
            if let Json::Obj(pairs) = &mut with_area {
                pairs.push(("smoke".to_string(), Json::Bool(false)));
            }
        }
        BenchRecord::from_json(&with_area, context)
    }
}

/// Groups raw shim records into per-area reports, sorted by area and, inside
/// each area, by `(group, bench)`. `git_rev` and `smoke` stamp the run's
/// metadata into every report (a record-level smoke flag also upgrades its
/// report, so a smoke run is never mistaken for a full one).
pub fn merge_records(records: Vec<BenchRecord>, git_rev: &str, smoke: bool) -> Vec<AreaReport> {
    let mut reports: Vec<AreaReport> = Vec::new();
    for record in records {
        let report = match reports.iter_mut().find(|r| r.area == record.area) {
            Some(report) => report,
            None => {
                reports.push(AreaReport {
                    schema: SCHEMA.to_string(),
                    area: record.area.clone(),
                    git_rev: git_rev.to_string(),
                    smoke,
                    benches: Vec::new(),
                    probes: Vec::new(),
                });
                reports.last_mut().expect("just pushed")
            }
        };
        report.smoke |= record.smoke;
        report.benches.push(record);
    }
    for report in &mut reports {
        report
            .benches
            .sort_by(|a, b| (&a.group, &a.bench).cmp(&(&b.group, &b.bench)));
    }
    reports.sort_by(|a, b| {
        let rank = |area: &str| AREAS.iter().position(|k| *k == area).unwrap_or(AREAS.len());
        (rank(&a.area), &a.area).cmp(&(rank(&b.area), &b.area))
    });
    reports
}

/// The 20k-person / 40-city / 4-member-club store of the `sparql_planner`
/// bench: the selectivity skew that makes join order matter.
fn skewed_store() -> Store {
    let mut store = Store::new();
    let born = Term::iri("http://e/bornIn");
    let member = Term::iri("http://e/memberOf");
    let club = Term::iri("http://e/club");
    for i in 0..20_000 {
        let person = Term::iri(format!("http://e/person{i}"));
        let city = Term::iri(format!("http://e/city{}", i % 40));
        store.insert(Triple::new(person.clone(), born.clone(), city));
        if i % 5_000 == 0 {
            store.insert(Triple::new(person, member.clone(), club.clone()));
        }
    }
    store
}

/// Runs the fixed planner probe queries through `query_traced` and records
/// the executor's rows-scanned counters. Deterministic by construction:
/// same store, same queries, same planner → same counts on every machine.
pub fn planner_probes() -> Vec<ProbeRecord> {
    let store = skewed_store();
    let _ = store.planner_stats();
    let endpoint = InProcessEndpoint::new("perf-probes", store);
    let probes = [
        (
            "worst_order_two_pattern_join",
            "SELECT ?p ?c WHERE { ?p <http://e/bornIn> ?c . \
             ?p <http://e/memberOf> <http://e/club> . }",
        ),
        (
            "limit10_streaming_scan",
            "SELECT ?p WHERE { ?p <http://e/bornIn> ?c . } LIMIT 10",
        ),
        (
            "selective_point_lookup",
            "SELECT ?p WHERE { ?p <http://e/memberOf> <http://e/club> . }",
        ),
    ];
    probes
        .iter()
        .map(|(name, sparql)| {
            let query = parse_query(sparql).expect("probe query parses");
            let traced = endpoint.query_traced(&query).expect("probe query executes");
            ProbeRecord {
                name: name.to_string(),
                rows_scanned: traced.metrics.map(|m| m.rows_scanned).unwrap_or(0),
                result_rows: traced.results.rows().len() as u64,
            }
        })
        .collect()
}

/// Thresholds for the regression gate. Ratios compare `current / baseline`
/// of a metric; timing metrics additionally require the absolute delta to
/// exceed `min_delta_ns` before they can warn or fail (sub-nanosecond
/// jitter on trivial benches is not a regression).
#[derive(Debug, Clone, PartialEq)]
pub struct DiffConfig {
    /// Timing ratio at or above which a row is flagged `warn`.
    pub warn_ratio: f64,
    /// Timing ratio at or above which a row fails the gate.
    pub fail_ratio: f64,
    /// Minimum absolute p50 delta (ns) before a timing row can warn/fail.
    pub min_delta_ns: f64,
    /// Rows-scanned ratio at or above which a probe row fails. Probes are
    /// deterministic counters, so this is much tighter than `fail_ratio`.
    pub probe_fail_ratio: f64,
}

impl DiffConfig {
    /// Default thresholds. Smoke runs (3 samples on shared CI runners, and
    /// baselines usually recorded on a different machine) get much looser
    /// timing ratios; an injected 10× regression still fails loudly. The
    /// probe threshold is machine-independent and never loosened.
    pub fn defaults(smoke: bool) -> DiffConfig {
        if smoke {
            DiffConfig {
                warn_ratio: 2.5,
                fail_ratio: 8.0,
                min_delta_ns: 25.0,
                probe_fail_ratio: 1.5,
            }
        } else {
            DiffConfig {
                warn_ratio: 1.5,
                fail_ratio: 3.0,
                min_delta_ns: 25.0,
                probe_fail_ratio: 1.5,
            }
        }
    }
}

/// The verdict for one compared metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiffStatus {
    /// Current is meaningfully faster than the baseline.
    Improved,
    /// Within noise thresholds.
    Ok,
    /// Above the warn ratio but below the fail ratio.
    Warn,
    /// At or above the fail ratio — the gate fails.
    Fail,
    /// Present in the current run but not in the baseline.
    New,
    /// Present in the baseline but missing from the current run (bench
    /// renamed/removed, or the suite did not execute it).
    Missing,
}

impl DiffStatus {
    /// Short lowercase label used in the markdown table.
    pub fn label(&self) -> &'static str {
        match self {
            DiffStatus::Improved => "improved",
            DiffStatus::Ok => "ok",
            DiffStatus::Warn => "warn",
            DiffStatus::Fail => "FAIL",
            DiffStatus::New => "new",
            DiffStatus::Missing => "missing",
        }
    }
}

/// One compared metric: a benchmark's p50 or a probe's rows-scanned count.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffEntry {
    /// Area the metric belongs to.
    pub area: String,
    /// `group/bench` for benchmarks, `probe:<name>` for probes.
    pub name: String,
    /// Metric identifier (`p50_ns` or `rows_scanned`).
    pub metric: String,
    /// Baseline value (0 when `New`).
    pub base: f64,
    /// Current value (0 when `Missing`).
    pub current: f64,
    /// `current / base` (1.0 when either side is missing or zero).
    pub ratio: f64,
    /// The verdict.
    pub status: DiffStatus,
}

fn timing_status(base: f64, current: f64, cfg: &DiffConfig) -> (f64, DiffStatus) {
    if base <= 0.0 {
        return (1.0, DiffStatus::Ok);
    }
    let ratio = current / base;
    if (current - base).abs() < cfg.min_delta_ns {
        return (ratio, DiffStatus::Ok);
    }
    let status = if ratio >= cfg.fail_ratio {
        DiffStatus::Fail
    } else if ratio >= cfg.warn_ratio {
        DiffStatus::Warn
    } else if ratio <= 1.0 / cfg.warn_ratio {
        DiffStatus::Improved
    } else {
        DiffStatus::Ok
    };
    (ratio, status)
}

/// Compares a fresh run against the committed baselines, producing one row
/// per benchmark p50 and one per probe rows-scanned counter. Benchmarks
/// present on only one side yield `New`/`Missing` rows (non-fatal — the
/// gate only fails on `Fail`).
pub fn diff_reports(
    baselines: &[AreaReport],
    current: &[AreaReport],
    cfg: &DiffConfig,
) -> Vec<DiffEntry> {
    let mut entries = Vec::new();
    for base_report in baselines {
        let cur_report = current.iter().find(|r| r.area == base_report.area);
        for base in &base_report.benches {
            let name = format!("{}/{}", base.group, base.bench);
            match cur_report.and_then(|r| {
                r.benches
                    .iter()
                    .find(|b| b.group == base.group && b.bench == base.bench)
            }) {
                Some(cur) => {
                    let (ratio, status) = timing_status(base.p50_ns, cur.p50_ns, cfg);
                    entries.push(DiffEntry {
                        area: base_report.area.clone(),
                        name,
                        metric: "p50_ns".to_string(),
                        base: base.p50_ns,
                        current: cur.p50_ns,
                        ratio,
                        status,
                    });
                }
                None => entries.push(DiffEntry {
                    area: base_report.area.clone(),
                    name,
                    metric: "p50_ns".to_string(),
                    base: base.p50_ns,
                    current: 0.0,
                    ratio: 1.0,
                    status: DiffStatus::Missing,
                }),
            }
        }
        for base in &base_report.probes {
            let name = format!("probe:{}", base.name);
            match cur_report.and_then(|r| r.probes.iter().find(|p| p.name == base.name)) {
                Some(cur) => {
                    let (ratio, status) = if base.rows_scanned == 0 {
                        (1.0, DiffStatus::Ok)
                    } else {
                        let ratio = cur.rows_scanned as f64 / base.rows_scanned as f64;
                        let status = if ratio >= cfg.probe_fail_ratio {
                            DiffStatus::Fail
                        } else if ratio < 1.0 {
                            DiffStatus::Improved
                        } else {
                            DiffStatus::Ok
                        };
                        (ratio, status)
                    };
                    entries.push(DiffEntry {
                        area: base_report.area.clone(),
                        name,
                        metric: "rows_scanned".to_string(),
                        base: base.rows_scanned as f64,
                        current: cur.rows_scanned as f64,
                        ratio,
                        status,
                    });
                }
                None => entries.push(DiffEntry {
                    area: base_report.area.clone(),
                    name,
                    metric: "rows_scanned".to_string(),
                    base: base.rows_scanned as f64,
                    current: 0.0,
                    ratio: 1.0,
                    status: DiffStatus::Missing,
                }),
            }
        }
    }
    for cur_report in current {
        let base_report = baselines.iter().find(|r| r.area == cur_report.area);
        for cur in &cur_report.benches {
            let known = base_report.is_some_and(|r| {
                r.benches
                    .iter()
                    .any(|b| b.group == cur.group && b.bench == cur.bench)
            });
            if !known {
                entries.push(DiffEntry {
                    area: cur_report.area.clone(),
                    name: format!("{}/{}", cur.group, cur.bench),
                    metric: "p50_ns".to_string(),
                    base: 0.0,
                    current: cur.p50_ns,
                    ratio: 1.0,
                    status: DiffStatus::New,
                });
            }
        }
    }
    entries
}

/// The rows of `entries` whose status fails the gate.
pub fn failures(entries: &[DiffEntry]) -> Vec<&DiffEntry> {
    entries
        .iter()
        .filter(|e| e.status == DiffStatus::Fail)
        .collect()
}

fn human_value(metric: &str, value: f64) -> String {
    if metric == "rows_scanned" {
        format!("{}", value as u64)
    } else if value <= 0.0 {
        "-".to_string()
    } else {
        format!("{:.3?}", std::time::Duration::from_secs_f64(value / 1e9))
    }
}

/// Renders the diff as a GitHub-flavoured markdown table, fail rows first.
pub fn markdown_table(entries: &[DiffEntry]) -> String {
    let mut sorted: Vec<&DiffEntry> = entries.iter().collect();
    let severity = |s: DiffStatus| match s {
        DiffStatus::Fail => 0,
        DiffStatus::Warn => 1,
        DiffStatus::Missing => 2,
        DiffStatus::Improved => 3,
        DiffStatus::New => 4,
        DiffStatus::Ok => 5,
    };
    sorted.sort_by(|a, b| {
        (severity(a.status), &a.area, &a.name).cmp(&(severity(b.status), &b.area, &b.name))
    });
    let mut out = String::new();
    out.push_str("| area | benchmark | metric | baseline | current | ratio | status |\n");
    out.push_str("|---|---|---|---:|---:|---:|---|\n");
    for e in sorted {
        let ratio = match e.status {
            DiffStatus::New | DiffStatus::Missing => "-".to_string(),
            _ => format!("{:.2}x", e.ratio),
        };
        let _ = writeln!(
            out,
            "| {} | {} | {} | {} | {} | {} | {} |",
            e.area,
            e.name,
            e.metric,
            human_value(&e.metric, e.base),
            human_value(&e.metric, e.current),
            ratio,
            e.status.label(),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(group: &str, bench: &str, p50: f64) -> BenchRecord {
        record_in("", group, bench, p50)
    }

    fn record_in(area: &str, group: &str, bench: &str, p50: f64) -> BenchRecord {
        BenchRecord {
            area: area.to_string(),
            group: group.to_string(),
            bench: bench.to_string(),
            smoke: false,
            samples: 10,
            iters: 1000,
            mean_ns: p50 * 1.05,
            p50_ns: p50,
            p95_ns: p50 * 1.4,
            min_ns: p50 * 0.9,
            iters_per_sec: 1e9 / (p50 * 1.05),
        }
    }

    fn report_with(area: &str, benches: Vec<BenchRecord>) -> AreaReport {
        let benches = benches
            .into_iter()
            .map(|mut b| {
                b.area = area.to_string();
                b
            })
            .collect();
        AreaReport {
            schema: SCHEMA.to_string(),
            area: area.to_string(),
            git_rev: "deadbeef".to_string(),
            smoke: false,
            benches,
            probes: Vec::new(),
        }
    }

    #[test]
    fn merge_groups_and_sorts_by_area_rank() {
        let reports = merge_records(
            vec![
                record_in("e2e", "pipeline", "answer", 1.5e7),
                record_in("store", "store_load", "insert_all/2000", 3.0e6),
                record_in("store", "store_load", "bulk", 2.0e6),
            ],
            "abc123",
            true,
        );
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].area, "store");
        assert_eq!(reports[0].benches[0].bench, "bulk");
        assert_eq!(reports[1].area, "e2e");
        assert!(reports.iter().all(|r| r.smoke && r.git_rev == "abc123"));
    }

    #[test]
    fn injected_10x_p50_regression_fails_even_with_smoke_thresholds() {
        let base = vec![report_with(
            "planner",
            vec![record(
                "sparql_planner_join_order",
                "worst_order_planned",
                3_200.0,
            )],
        )];
        let mut regressed = base.clone();
        regressed[0].benches[0].p50_ns *= 10.0;
        let entries = diff_reports(&base, &regressed, &DiffConfig::defaults(true));
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].status, DiffStatus::Fail);
        assert!(!failures(&entries).is_empty());
        // The stricter full-run thresholds fail it too.
        let entries = diff_reports(&base, &regressed, &DiffConfig::defaults(false));
        assert_eq!(entries[0].status, DiffStatus::Fail);
    }

    #[test]
    fn five_percent_noise_passes_both_threshold_sets() {
        let base = vec![report_with(
            "store",
            vec![record("store_pattern_matching", "six_way/spo", 439.0)],
        )];
        let mut noisy = base.clone();
        noisy[0].benches[0].p50_ns *= 1.05;
        for smoke in [true, false] {
            let entries = diff_reports(&base, &noisy, &DiffConfig::defaults(smoke));
            assert_eq!(entries.len(), 1);
            assert_eq!(entries[0].status, DiffStatus::Ok, "smoke={smoke}");
            assert!(failures(&entries).is_empty());
        }
    }

    #[test]
    fn sub_threshold_absolute_delta_never_warns() {
        // 3ns → 20ns is a 6.7x ratio but only a 17ns delta: jitter, not a
        // regression the gate should act on.
        let base = vec![report_with("store", vec![record("g", "tiny", 3.0)])];
        let mut cur = base.clone();
        cur[0].benches[0].p50_ns = 20.0;
        let entries = diff_reports(&base, &cur, &DiffConfig::defaults(false));
        assert_eq!(entries[0].status, DiffStatus::Ok);
    }

    #[test]
    fn improvements_missing_and_new_are_labelled() {
        let base = vec![report_with(
            "sparql",
            vec![
                record("execution", "two_hop", 30_000.0),
                record("execution", "removed_bench", 1_000.0),
            ],
        )];
        let current = vec![report_with(
            "sparql",
            vec![
                record("execution", "two_hop", 10_000.0),
                record("execution", "brand_new", 2_000.0),
            ],
        )];
        let entries = diff_reports(&base, &current, &DiffConfig::defaults(false));
        let status_of = |name: &str| {
            entries
                .iter()
                .find(|e| e.name.ends_with(name))
                .map(|e| e.status)
        };
        assert_eq!(status_of("two_hop"), Some(DiffStatus::Improved));
        assert_eq!(status_of("removed_bench"), Some(DiffStatus::Missing));
        assert_eq!(status_of("brand_new"), Some(DiffStatus::New));
        assert!(failures(&entries).is_empty());
    }

    #[test]
    fn probe_rows_scanned_regression_fails_tightly() {
        let mut base = report_with("planner", Vec::new());
        base.probes.push(ProbeRecord {
            name: "limit10_streaming_scan".to_string(),
            rows_scanned: 10,
            result_rows: 10,
        });
        let mut cur = base.clone();
        cur.probes[0].rows_scanned = 16; // 1.6x: above the 1.5x probe gate.
        let entries = diff_reports(
            std::slice::from_ref(&base),
            std::slice::from_ref(&cur),
            &DiffConfig::defaults(true),
        );
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].metric, "rows_scanned");
        assert_eq!(entries[0].status, DiffStatus::Fail);
    }

    #[test]
    fn markdown_table_puts_failures_first() {
        let base = vec![report_with(
            "cache",
            vec![
                record("cache", "warm", 1_000_000.0),
                record("cache", "cold", 7_000_000.0),
            ],
        )];
        let mut cur = base.clone();
        cur[0].benches.retain(|b| b.bench == "warm");
        cur[0].benches[0].p50_ns *= 20.0;
        let entries = diff_reports(&base, &cur, &DiffConfig::defaults(false));
        let table = markdown_table(&entries);
        let lines: Vec<&str> = table.lines().collect();
        assert!(lines[0].starts_with("| area |"));
        assert!(lines[2].contains("FAIL"), "got: {}", lines[2]);
        assert!(table.contains("missing"));
    }
}
