//! Numbers published in the paper, reproduced as labelled constants.
//!
//! Two uses:
//!
//! * **NSQA** is proprietary; the paper itself only reports its published
//!   QALD-9 / LC-QuAD 1.0 numbers, so the Table 3 harness does the same.
//! * The paper's own measurements are embedded so every harness binary can
//!   print a *paper vs. measured* comparison (the shapes that EXPERIMENTS.md
//!   tracks).

/// Precision / recall / F1 triple as reported in the paper (scores are
/// "out of 100").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PublishedPRF {
    /// Precision.
    pub precision: f64,
    /// Recall.
    pub recall: f64,
    /// F1.
    pub f1: f64,
}

/// NSQA on QALD-9 (Table 3).
pub const NSQA_QALD9: PublishedPRF = PublishedPRF {
    precision: 31.89,
    recall: 32.05,
    f1: 31.26,
};

/// NSQA on LC-QuAD 1.0 (Table 3).
pub const NSQA_LCQUAD: PublishedPRF = PublishedPRF {
    precision: 44.76,
    recall: 45.82,
    f1: 44.45,
};

/// Paper-reported KGQAn rows of Table 3, keyed by benchmark name.
pub const PAPER_KGQAN_TABLE3: &[(&str, PublishedPRF)] = &[
    (
        "QALD-9",
        PublishedPRF {
            precision: 51.13,
            recall: 38.72,
            f1: 44.07,
        },
    ),
    (
        "LC-QuAD 1.0",
        PublishedPRF {
            precision: 58.71,
            recall: 46.11,
            f1: 51.65,
        },
    ),
    (
        "YAGO-Bench",
        PublishedPRF {
            precision: 48.48,
            recall: 65.22,
            f1: 55.62,
        },
    ),
    (
        "DBLP-Bench",
        PublishedPRF {
            precision: 57.87,
            recall: 52.02,
            f1: 54.79,
        },
    ),
    (
        "MAG-Bench",
        PublishedPRF {
            precision: 55.43,
            recall: 45.61,
            f1: 50.05,
        },
    ),
];

/// Paper-reported gAnswer rows of Table 3.
pub const PAPER_GANSWER_TABLE3: &[(&str, PublishedPRF)] = &[
    (
        "QALD-9",
        PublishedPRF {
            precision: 29.34,
            recall: 32.68,
            f1: 29.81,
        },
    ),
    (
        "LC-QuAD 1.0",
        PublishedPRF {
            precision: 82.21,
            recall: 4.31,
            f1: 8.18,
        },
    ),
    (
        "YAGO-Bench",
        PublishedPRF {
            precision: 58.49,
            recall: 34.05,
            f1: 43.04,
        },
    ),
    (
        "DBLP-Bench",
        PublishedPRF {
            precision: 78.00,
            recall: 2.00,
            f1: 3.90,
        },
    ),
    (
        "MAG-Bench",
        PublishedPRF {
            precision: 0.0,
            recall: 0.0,
            f1: 0.0,
        },
    ),
];

/// Paper-reported EDGQA rows of Table 3.
pub const PAPER_EDGQA_TABLE3: &[(&str, PublishedPRF)] = &[
    (
        "QALD-9",
        PublishedPRF {
            precision: 31.30,
            recall: 40.30,
            f1: 32.00,
        },
    ),
    (
        "LC-QuAD 1.0",
        PublishedPRF {
            precision: 50.50,
            recall: 56.00,
            f1: 53.10,
        },
    ),
    (
        "YAGO-Bench",
        PublishedPRF {
            precision: 41.90,
            recall: 40.80,
            f1: 41.40,
        },
    ),
    (
        "DBLP-Bench",
        PublishedPRF {
            precision: 8.00,
            recall: 8.00,
            f1: 8.00,
        },
    ),
    (
        "MAG-Bench",
        PublishedPRF {
            precision: 4.00,
            recall: 4.00,
            f1: 4.00,
        },
    ),
];

/// Paper-reported response times of Figure 7: per system and benchmark, the
/// average total latency in seconds.
pub const PAPER_FIGURE7_TOTAL_SECONDS: &[(&str, &str, f64)] = &[
    ("gAnswer", "QALD-9", 8.9),
    ("EDGQA", "QALD-9", 9.4),
    ("KGQAn", "QALD-9", 7.2),
    ("gAnswer", "LC-QuAD 1.0", 13.6),
    ("EDGQA", "LC-QuAD 1.0", 6.0),
    ("KGQAn", "LC-QuAD 1.0", 3.2),
    ("gAnswer", "YAGO-Bench", 15.8),
    ("EDGQA", "YAGO-Bench", 4.4),
    ("KGQAn", "YAGO-Bench", 5.8),
    ("gAnswer", "DBLP-Bench", 4.4),
    ("EDGQA", "DBLP-Bench", 2.2),
    ("KGQAn", "DBLP-Bench", 3.3),
    ("gAnswer", "MAG-Bench", 2.0),
    ("EDGQA", "MAG-Bench", 2.5),
    ("KGQAn", "MAG-Bench", 3.4),
];

/// Paper-reported Table 4 F1 scores: (benchmark, BART+FG, GPT-3 QU + FG,
/// BART + GPT-3 CG affinity).
pub const PAPER_TABLE4_F1: &[(&str, f64, f64, f64)] = &[
    ("QALD-9", 44.07, 42.12, 42.60),
    ("LC-QuAD 1.0", 51.65, 52.87, 50.86),
    ("YAGO-Bench", 55.62, 54.94, 55.02),
    ("DBLP-Bench", 54.79, 54.42, 41.72),
    ("MAG-Bench", 50.05, 49.26, 37.64),
];

/// Paper-reported Figure 10 bars: (benchmark, P/R/F1 without filtration,
/// P/R/F1 with filtration).
pub const PAPER_FIGURE10: &[(&str, [f64; 3], [f64; 3])] = &[
    ("QALD-9", [28.4, 43.1, 34.3], [51.1, 38.7, 44.1]),
    ("LC-QuAD 1.0", [48.1, 49.7, 48.9], [58.7, 46.1, 51.6]),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn published_constants_are_internally_consistent() {
        // F1 must lie between min and max of P and R... actually F1 ≤ max and
        // F1 is the harmonic mean, so it is ≤ both arithmetic mean and max.
        for rows in [PAPER_KGQAN_TABLE3, PAPER_GANSWER_TABLE3, PAPER_EDGQA_TABLE3] {
            for (name, prf) in rows {
                assert!(
                    prf.f1 <= prf.precision.max(prf.recall) + 1e-6,
                    "implausible F1 for {name}"
                );
            }
        }
        assert_eq!(PAPER_KGQAN_TABLE3.len(), 5);
        assert_eq!(PAPER_FIGURE7_TOTAL_SECONDS.len(), 15);
        assert_eq!(PAPER_TABLE4_F1.len(), 5);
        assert!((NSQA_QALD9.f1 - 31.26).abs() < 1e-9);
        assert!((NSQA_LCQUAD.f1 - 44.45).abs() < 1e-9);
    }
}
