//! # kgqan-bench
//!
//! The experiment harness: shared utilities used by the `table*` / `figure*`
//! binaries that regenerate every table and figure of the paper's evaluation
//! (Section 7), and by the criterion micro-benchmarks.
//!
//! Run, for example:
//!
//! ```text
//! cargo run --release -p kgqan-bench --bin table3_answer_quality -- --scale smoke
//! cargo run --release -p kgqan-bench --bin figure7_response_time
//! cargo bench --workspace
//! ```
//!
//! The crate also owns the persisted perf trajectory ([`perftrack`]): the
//! `perf_report` binary runs the whole criterion suite and merges the
//! shim's JSONL records into the root `BENCH_<area>.json` artifacts, and
//! `perf_diff` gates a fresh run against those committed baselines:
//!
//! ```text
//! cargo run --release -p kgqan-bench --bin perf_report -- --out-dir .
//! cargo run --release -p kgqan-bench --bin perf_diff -- --baseline-dir . --current-dir target/bench-report
//! ```
//!
//! Every binary accepts `--scale smoke|full` (default `full`): `smoke` uses
//! small KGs and 24 questions per benchmark for a quick check, `full` uses
//! the paper-shaped scale (150 / 300 / 100 / 100 / 100 questions).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;
pub mod kggen;
pub mod linking_eval;
/// The minimal hand-rolled JSON reader/writer the perf tooling records its
/// artifacts with.  The implementation lives in [`kgqan_endpoint::json`]
/// (the network front-end serializes its wire bodies with the same code);
/// this alias keeps the historical `kgqan_bench::perfjson` paths working.
pub mod perfjson {
    pub use kgqan_endpoint::json::*;
}
pub mod perftrack;
pub mod published;
pub mod table;

pub use harness::{build_systems, parse_scale, run_system_on_benchmark, SystemSet};
pub use linking_eval::{evaluate_linking, LinkingScores};
pub use table::TableWriter;
