//! Shared harness: build the three systems, run one system over one
//! benchmark, collect the evaluation report.

use kgqan::{AffinityModel, KgqanConfig, QuestionUnderstanding};
use kgqan_baselines::{EdgqaSystem, GAnswerSystem, KgqanSystem, PreprocessingStats, QaSystem};
use kgqan_benchmarks::suite::BenchmarkInstance;
use kgqan_benchmarks::{evaluate, EvaluationReport, SuiteScale, SystemAnswer};
use kgqan_nlp::Seq2SeqVariant;
use kgqan_rdf::vocab;

/// Parse the `--scale smoke|full` command-line argument (default: full).
pub fn parse_scale(args: &[String]) -> SuiteScale {
    let mut scale = SuiteScale::Full;
    for window in args.windows(2) {
        if window[0] == "--scale" && window[1] == "smoke" {
            scale = SuiteScale::Smoke;
        }
    }
    if args.iter().any(|a| a == "--smoke") {
        scale = SuiteScale::Smoke;
    }
    scale
}

/// The three evaluated systems, pre-processed for one benchmark instance.
pub struct SystemSet {
    /// KGQAn (no pre-processing needed).
    pub kgqan: KgqanSystem,
    /// gAnswer with its per-KG indices built.
    pub ganswer: GAnswerSystem,
    /// EDGQA with its per-KG indices built (label predicate configured for
    /// MAG, the manual step of §7.2.1).
    pub edgqa: EdgqaSystem,
    /// Pre-processing cost per system, in Table 2 order
    /// (EDGQA/Falcon first, then gAnswer; KGQAn's is always zero).
    pub preprocessing: Vec<(String, PreprocessingStats)>,
}

/// Build and pre-process the three systems for one benchmark instance.
///
/// `understanding` lets the caller train KGQAn's QU models once and share
/// them across benchmarks (they are KG-independent by design).
pub fn build_systems(
    instance: &BenchmarkInstance,
    understanding: QuestionUnderstanding,
    config: KgqanConfig,
) -> SystemSet {
    let mut kgqan = KgqanSystem::with_parts(understanding, config);
    let kgqan_stats = kgqan.preprocess(instance.endpoint.as_ref());

    let mut ganswer = GAnswerSystem::new();
    let ganswer_stats = ganswer.preprocess(instance.endpoint.as_ref());

    let mut edgqa = if instance.kg.flavor == kgqan_benchmarks::KgFlavor::Mag {
        EdgqaSystem::new().with_label_predicate(vocab::FOAF_NAME)
    } else {
        EdgqaSystem::new()
    };
    let edgqa_stats = edgqa.preprocess(instance.endpoint.as_ref());

    SystemSet {
        kgqan,
        ganswer,
        edgqa,
        preprocessing: vec![
            ("EDGQA (Falcon-like)".to_string(), edgqa_stats),
            ("gAnswer".to_string(), ganswer_stats),
            ("KGQAn".to_string(), kgqan_stats),
        ],
    }
}

/// Default KGQAn configuration used by the harness (the paper's settings).
pub fn default_kgqan_config() -> KgqanConfig {
    KgqanConfig::default()
}

/// An ablation configuration for Table 4.
pub fn kgqan_config_variant(seq2seq: Seq2SeqVariant, affinity: AffinityModel) -> KgqanConfig {
    KgqanConfig {
        seq2seq,
        affinity,
        ..KgqanConfig::default()
    }
}

/// Run one system over every question of a benchmark and evaluate it.
pub fn run_system_on_benchmark(
    system: &dyn QaSystem,
    instance: &BenchmarkInstance,
) -> (EvaluationReport, Vec<SystemAnswer>) {
    let mut answers = Vec::with_capacity(instance.benchmark.len());
    for question in &instance.benchmark.questions {
        let response = system.answer(&question.text, instance.endpoint.as_ref());
        answers.push(SystemAnswer {
            answers: response.answers,
            boolean: response.boolean,
            understanding_ok: response.understanding_ok,
            phase_seconds: Some(response.phase_seconds),
        });
    }
    let report = evaluate(&instance.benchmark, system.name(), &answers);
    (report, answers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgqan_benchmarks::{BenchmarkSuite, KgFlavor};

    #[test]
    fn parse_scale_accepts_both_spellings() {
        assert_eq!(parse_scale(&[]), SuiteScale::Full);
        assert_eq!(
            parse_scale(&["--scale".into(), "smoke".into()]),
            SuiteScale::Smoke
        );
        assert_eq!(parse_scale(&["--smoke".into()]), SuiteScale::Smoke);
        assert_eq!(
            parse_scale(&["--scale".into(), "full".into()]),
            SuiteScale::Full
        );
    }

    #[test]
    fn harness_runs_kgqan_on_a_smoke_benchmark() {
        let instance = BenchmarkSuite::build_one(KgFlavor::Dbpedia10, SuiteScale::Smoke);
        let systems = build_systems(
            &instance,
            QuestionUnderstanding::train_default(),
            default_kgqan_config(),
        );
        // KGQAn needs no pre-processing; the baselines do.
        let kgqan_pre = systems
            .preprocessing
            .iter()
            .find(|(n, _)| n == "KGQAn")
            .unwrap();
        assert_eq!(kgqan_pre.1.index_bytes, 0);
        let ganswer_pre = systems
            .preprocessing
            .iter()
            .find(|(n, _)| n == "gAnswer")
            .unwrap();
        assert!(ganswer_pre.1.index_bytes > 0);

        let (report, answers) = run_system_on_benchmark(&systems.kgqan, &instance);
        assert_eq!(answers.len(), instance.benchmark.len());
        assert!(
            report.macro_f1 > 0.2,
            "KGQAn should answer a reasonable share of the smoke benchmark, got F1 {}",
            report.macro_f1
        );
    }
}
