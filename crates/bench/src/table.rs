//! Plain-text table rendering for the experiment binaries.

/// A simple fixed-width table writer that prints aligned columns to stdout,
/// in the style of the paper's tables.
#[derive(Debug, Default, Clone)]
pub struct TableWriter {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TableWriter {
    /// Create a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        TableWriter {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (cells are converted to strings by the caller).
    pub fn row(&mut self, cells: &[String]) {
        self.rows.push(cells.to_vec());
    }

    /// Append a row of string slices.
    pub fn row_strs(&mut self, cells: &[&str]) {
        self.rows
            .push(cells.iter().map(|s| s.to_string()).collect());
    }

    /// Render the table to a string.
    pub fn render(&self) -> String {
        let columns = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(columns) {
                if cell.len() > widths[i] {
                    widths[i] = cell.len();
                }
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                let width = widths.get(i).copied().unwrap_or(cell.len());
                line.push_str(&format!("{cell:<width$}"));
            }
            line.trim_end().to_string()
        };
        out.push_str(&render_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (columns.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Print the table to stdout with a title.
    pub fn print(&self, title: &str) {
        println!("\n== {title} ==\n{}", self.render());
    }
}

/// Format a float with two decimals (scores are reported "out of 100").
pub fn pct(x: f64) -> String {
    format!("{:.2}", x * 100.0)
}

/// Format a duration in seconds with three decimals.
pub fn secs(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TableWriter::new(&["System", "P", "R", "F1"]);
        t.row_strs(&["KGQAn", "51.13", "38.72", "44.07"]);
        t.row_strs(&["gAnswer", "29.34", "32.68", "29.81"]);
        let rendered = t.render();
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("System"));
        assert!(lines[2].starts_with("KGQAn"));
        // All data rows align the first column to the same width.
        assert_eq!(lines[2].find("51.13"), lines[3].find("29.34"));
    }

    #[test]
    fn formats_percentages_and_seconds() {
        assert_eq!(pct(0.4407), "44.07");
        assert_eq!(secs(1.23456), "1.235");
    }
}
