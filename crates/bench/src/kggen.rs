//! Deterministic synthetic KG generator for the `scale` benchmarks.
//!
//! The affinity/linking benchmarks use [`kgqan_benchmarks::kg::GeneratedKg`],
//! which produces small, richly-typed KGs shaped like the paper's evaluation
//! graphs.  The morsel-parallel executor needs something different: a KG big
//! enough (millions of triples) that a single BGP scan dominates query time,
//! with the *skewed* degree distribution real KGs exhibit — a few hub
//! entities own a large share of the edges, so equal-width partitions carry
//! very unequal work and morsel stealing actually matters.
//!
//! Everything is seeded and hand-rolled (splitmix64 + an inverse-CDF Zipf
//! sampler), so two runs — or two machines — build byte-identical stores and
//! the committed `BENCH_scale.json` baseline stays comparable over time.

use std::sync::Arc;

use kgqan_rdf::{LiveStore, Store, StoreSnapshot, Term, Triple};

/// IRI of the high-volume edge predicate (`?a links ?b`): the driver scan of
/// every multi-hop benchmark query.
pub const LINKS: &str = "http://kggen.invalid/p/links";

/// IRI of the sparse classification predicate (`?b category ?c`).
pub const CATEGORY: &str = "http://kggen.invalid/p/category";

/// Shape of a generated KG: sizes, skew, and the RNG seed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZipfKgConfig {
    /// Seed for the splitmix64 stream; same seed → identical store.
    pub seed: u64,
    /// Number of distinct entities.
    pub entities: usize,
    /// Target triple count (distinct triples actually inserted).
    pub triples: usize,
    /// Zipf exponent for the subject/object degree distribution.  Higher
    /// values concentrate more edges on fewer hub entities; real KGs sit
    /// around 1.0–1.3 (use something != 1.0, the sampler's closed form
    /// divides by `1 - exponent`).
    pub exponent: f64,
    /// Number of distinct `category` objects.
    pub categories: usize,
}

impl ZipfKgConfig {
    /// The full-scale config the `scale` criterion area benchmarks against:
    /// two million triples over 200k entities.
    pub fn scale_full() -> Self {
        ZipfKgConfig {
            seed: 0x5eed_cafe_f00d_0001,
            entities: 200_000,
            triples: 2_000_000,
            exponent: 1.1,
            categories: 64,
        }
    }

    /// A shrunk config for `KGQAN_BENCH_SMOKE` runs and unit tests: same
    /// shape and skew, ~60k triples, builds in well under a second.
    pub fn scale_smoke() -> Self {
        ZipfKgConfig {
            entities: 8_000,
            triples: 60_000,
            ..ZipfKgConfig::scale_full()
        }
    }
}

/// A generated KG, published as a shared snapshot so benchmarks can hand it
/// to `Planner::for_shared_snapshot` (the parallel-eligible planner entry).
pub struct ZipfKg {
    /// The immutable snapshot the benchmarks query.
    pub snapshot: Arc<StoreSnapshot>,
    /// The config the KG was generated from.
    pub config: ZipfKgConfig,
}

impl ZipfKg {
    /// Generate the KG described by `config`.
    ///
    /// ~85% of triples are `links` edges with Zipf-skewed endpoints, the
    /// rest classify entities into one of `config.categories` categories.
    /// Duplicate draws are re-rolled, so the store holds exactly
    /// `config.triples` distinct triples.
    pub fn generate(config: ZipfKgConfig) -> ZipfKg {
        let mut rng = SplitMix64::new(config.seed);
        let zipf = Zipf::new(config.entities, config.exponent);

        let entities: Vec<Term> = (0..config.entities)
            .map(|i| Term::iri(format!("http://kggen.invalid/e/{i}")))
            .collect();
        let categories: Vec<Term> = (0..config.categories.max(1))
            .map(|i| Term::iri(format!("http://kggen.invalid/c/{i}")))
            .collect();
        let links = Term::iri(LINKS);
        let category = Term::iri(CATEGORY);

        let link_target = (config.triples * 85) / 100;
        let mut store = Store::new();
        while store.len() < link_target {
            // Decorrelate subject and object hubs with distinct strides so
            // hub→hub edges exist but don't dominate.
            let s = zipf.sample(rng.next_f64()) * 0x9e37 % config.entities;
            let o = zipf.sample(rng.next_f64()) * 0x85eb % config.entities;
            store.insert(Triple::new(
                entities[s].clone(),
                links.clone(),
                entities[o].clone(),
            ));
        }
        while store.len() < config.triples {
            let s = zipf.sample(rng.next_f64()) % config.entities;
            let c = (rng.next() as usize) % categories.len();
            store.insert(Triple::new(
                entities[s].clone(),
                category.clone(),
                categories[c].clone(),
            ));
        }
        store.compact();

        ZipfKg {
            snapshot: LiveStore::new(store).snapshot(),
            config,
        }
    }
}

/// The splitmix64 PRNG: tiny, fast, and fully deterministic from its seed.
struct SplitMix64(u64);

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Inverse-CDF Zipf sampler over ranks `0..n`.
///
/// For exponent `s != 1` the Zipf CDF is approximated by the integral
/// `H(k) ≈ (k^(1-s) - 1) / (1-s)`, which inverts in closed form — good
/// enough for benchmark skew and orders of magnitude cheaper than exact
/// rejection sampling at millions of draws.
struct Zipf {
    n: usize,
    one_minus_s: f64,
    h_n: f64,
}

impl Zipf {
    fn new(n: usize, exponent: f64) -> Self {
        let one_minus_s = 1.0 - exponent;
        Zipf {
            n,
            one_minus_s,
            h_n: ((n as f64).powf(one_minus_s) - 1.0) / one_minus_s,
        }
    }

    /// Map a uniform draw in `[0, 1)` to a rank in `0..n` (rank 0 hottest).
    fn sample(&self, u: f64) -> usize {
        let k = (1.0 + u * self.h_n * self.one_minus_s).powf(1.0 / self.one_minus_s);
        (k as usize).clamp(1, self.n) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgqan_rdf::TriplePattern;

    #[test]
    fn same_seed_generates_identical_stores() {
        let config = ZipfKgConfig {
            triples: 4_000,
            entities: 600,
            ..ZipfKgConfig::scale_smoke()
        };
        let a = ZipfKg::generate(config);
        let b = ZipfKg::generate(config);
        assert_eq!(a.snapshot.len(), config.triples);
        let triples_a: Vec<_> = a.snapshot.iter().collect();
        let triples_b: Vec<_> = b.snapshot.iter().collect();
        assert_eq!(triples_a, triples_b);
    }

    #[test]
    fn degree_distribution_is_skewed() {
        let config = ZipfKgConfig {
            triples: 8_000,
            entities: 2_000,
            ..ZipfKgConfig::scale_smoke()
        };
        let kg = ZipfKg::generate(config);
        let links = kg
            .snapshot
            .count_matching(&TriplePattern::any().with_predicate(Term::iri(LINKS)));
        assert!(links >= (config.triples * 8) / 10);

        // The hottest subject should own far more edges than a uniform
        // distribution would give it (~4 for 6.8k links over 2k entities).
        let mut best = 0;
        for i in 0..config.entities {
            let out = kg.snapshot.count_matching(
                &TriplePattern::any()
                    .with_subject(Term::iri(format!("http://kggen.invalid/e/{i}")))
                    .with_predicate(Term::iri(LINKS)),
            );
            best = best.max(out);
        }
        assert!(best > 40, "expected a hub entity, max out-degree {best}");
    }
}
