//! Regenerates **Figure 10**: KGQAn's precision / recall / F1 with and
//! without the post-filtration step, on the QALD-9-like and LC-QuAD-like
//! benchmarks.
//!
//! ```text
//! cargo run --release -p kgqan-bench --bin figure10_filtration [-- --scale smoke]
//! ```

use kgqan::{KgqanConfig, QuestionUnderstanding};
use kgqan_baselines::KgqanSystem;
use kgqan_bench::harness::{parse_scale, run_system_on_benchmark};
use kgqan_bench::published::PAPER_FIGURE10;
use kgqan_bench::table::{pct, TableWriter};
use kgqan_benchmarks::{BenchmarkSuite, KgFlavor};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = parse_scale(&args);
    println!("Figure 10 — effect of post-filtration (scale: {scale:?})");

    let mut table = TableWriter::new(&[
        "Benchmark",
        "Configuration",
        "P",
        "R",
        "Macro F1",
        "Paper (P/R/F1)",
    ]);

    for flavor in [KgFlavor::Dbpedia10, KgFlavor::Dbpedia04] {
        let instance = BenchmarkSuite::build_one(flavor, scale);
        for filtration in [false, true] {
            let config = KgqanConfig {
                filtration_enabled: filtration,
                ..KgqanConfig::default()
            };
            let system = KgqanSystem::with_parts(QuestionUnderstanding::train_default(), config);
            let (report, _) = run_system_on_benchmark(&system, &instance);
            let label = if filtration {
                "KGQAn"
            } else {
                "KGQAn without filtration"
            };
            let paper = PAPER_FIGURE10
                .iter()
                .find(|(b, _, _)| *b == instance.benchmark.name)
                .map(|(_, without, with)| {
                    let row = if filtration { with } else { without };
                    format!("{:.1} / {:.1} / {:.1}", row[0], row[1], row[2])
                })
                .unwrap_or_else(|| "-".into());
            table.row(&[
                instance.benchmark.name.clone(),
                label.to_string(),
                pct(report.macro_precision),
                pct(report.macro_recall),
                pct(report.macro_f1),
                paper,
            ]);
        }
    }

    table.print("Figure 10 (with vs. without filtration)");
    println!(
        "Paper shape to check: filtration improves precision (and overall F1) at a small cost\n\
         in recall, on both benchmarks."
    );
}
