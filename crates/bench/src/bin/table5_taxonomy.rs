//! Regenerates **Table 5**: questions solved per SPARQL shape (star / path)
//! and per LC-QuAD 2.0 linguistic category, for KGQAn, EDGQA and gAnswer.
//!
//! ```text
//! cargo run --release -p kgqan-bench --bin table5_taxonomy [-- --scale smoke]
//! ```

use kgqan::QuestionUnderstanding;
use kgqan_baselines::QaSystem;
use kgqan_bench::harness::{
    build_systems, default_kgqan_config, parse_scale, run_system_on_benchmark,
};
use kgqan_bench::table::TableWriter;
use kgqan_benchmarks::{BenchmarkSuite, KgFlavor, QueryShape, QuestionCategory, TaxonomyCounts};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = parse_scale(&args);
    println!(
        "Table 5 — solved questions by SPARQL shape and linguistic category (scale: {scale:?})"
    );

    // Table 5 covers QALD-9 plus the three unseen benchmarks.
    let flavors = [
        KgFlavor::Dbpedia10,
        KgFlavor::Yago,
        KgFlavor::Dblp,
        KgFlavor::Mag,
    ];

    let mut table = TableWriter::new(&[
        "Benchmark",
        "System",
        "Star (solved/total)",
        "Path (solved/total)",
        "Single fact",
        "Fact with type",
        "Multi fact",
        "Boolean",
    ]);

    for flavor in flavors {
        let instance = BenchmarkSuite::build_one(flavor, scale);
        let systems = build_systems(
            &instance,
            QuestionUnderstanding::train_default(),
            default_kgqan_config(),
        );
        let evaluated: Vec<&dyn QaSystem> = vec![&systems.kgqan, &systems.edgqa, &systems.ganswer];
        for system in evaluated {
            let (report, _) = run_system_on_benchmark(system, &instance);
            let taxonomy = TaxonomyCounts::compute(&instance.benchmark, &report);
            let cell =
                |c: kgqan_benchmarks::taxonomy::CellCount| format!("{}/{}", c.solved, c.total);
            table.row(&[
                instance.benchmark.name.clone(),
                report.system.clone(),
                cell(taxonomy.shape(QueryShape::Star)),
                cell(taxonomy.shape(QueryShape::Path)),
                cell(taxonomy.category(QuestionCategory::SingleFact)),
                cell(taxonomy.category(QuestionCategory::SingleFactWithType)),
                cell(taxonomy.category(QuestionCategory::MultiFact)),
                cell(taxonomy.category(QuestionCategory::Boolean)),
            ]);
        }
    }

    table.print("Table 5 (solved/total per taxonomy cell)");
    println!(
        "Paper shape to check: KGQAn solves the most questions in most cells across the\n\
         benchmarks, with the largest margins on DBLP-Bench and MAG-Bench."
    );
}
