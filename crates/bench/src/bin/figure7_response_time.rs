//! Regenerates **Figure 7**: average response time per system and benchmark,
//! broken down into question understanding (QU), linking and execution &
//! filtration (E&F).
//!
//! ```text
//! cargo run --release -p kgqan-bench --bin figure7_response_time [-- --scale smoke]
//! ```

use kgqan::QuestionUnderstanding;
use kgqan_baselines::QaSystem;
use kgqan_bench::harness::{
    build_systems, default_kgqan_config, parse_scale, run_system_on_benchmark,
};
use kgqan_bench::published::PAPER_FIGURE7_TOTAL_SECONDS;
use kgqan_bench::table::{secs, TableWriter};
use kgqan_benchmarks::{BenchmarkSuite, KgFlavor};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = parse_scale(&args);
    println!("Figure 7 — response time per phase (scale: {scale:?})");
    println!(
        "Note: absolute latencies are not comparable to the paper's (remote Virtuoso, much\n\
         larger KGs, Python/Java systems); the reported shape is the per-phase breakdown."
    );

    let mut table = TableWriter::new(&[
        "Benchmark",
        "System",
        "QU (s)",
        "Linking (s)",
        "E&F (s)",
        "Total (s)",
        "Paper total (s)",
    ]);

    for flavor in KgFlavor::ALL {
        let instance = BenchmarkSuite::build_one(flavor, scale);
        let systems = build_systems(
            &instance,
            QuestionUnderstanding::train_default(),
            default_kgqan_config(),
        );
        let evaluated: Vec<&dyn QaSystem> = vec![&systems.ganswer, &systems.edgqa, &systems.kgqan];
        for system in evaluated {
            let (report, _) = run_system_on_benchmark(system, &instance);
            let (qu, link, exec) = report.mean_phase_seconds.unwrap_or((0.0, 0.0, 0.0));
            let paper = PAPER_FIGURE7_TOTAL_SECONDS
                .iter()
                .find(|(s, b, _)| *s == report.system && *b == instance.benchmark.name)
                .map(|(_, _, t)| format!("{t:.1}"))
                .unwrap_or_else(|| "-".into());
            table.row(&[
                instance.benchmark.name.clone(),
                report.system.clone(),
                secs(qu),
                secs(link),
                secs(exec),
                secs(qu + link + exec),
                paper,
            ]);
        }
    }

    table.print("Figure 7 (mean seconds per phase)");
    println!(
        "Paper shape to check: KGQAn's time is dominated by QU, its linking is the cheapest\n\
         phase, and response time tracks pipeline complexity rather than KG size."
    );
}
