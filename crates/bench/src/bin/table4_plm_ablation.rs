//! Regenerates **Table 4**: KGQAn's F1 under different pre-trained-model
//! choices — BART-like vs GPT-3-like question understanding, and
//! fine-grained vs coarse-grained (sentence-embedding) semantic affinity.
//!
//! ```text
//! cargo run --release -p kgqan-bench --bin table4_plm_ablation [-- --scale smoke]
//! ```

use kgqan::{AffinityModel, QuestionUnderstanding};
use kgqan_baselines::KgqanSystem;
use kgqan_bench::harness::{kgqan_config_variant, parse_scale, run_system_on_benchmark};
use kgqan_bench::published::PAPER_TABLE4_F1;
use kgqan_bench::table::{pct, TableWriter};
use kgqan_benchmarks::{BenchmarkSuite, KgFlavor};
use kgqan_nlp::Seq2SeqVariant;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = parse_scale(&args);
    println!("Table 4 — KGQAn F1 under different QU / affinity models (scale: {scale:?})");

    let variants: [(&str, Seq2SeqVariant, AffinityModel); 3] = [
        (
            "QU: BART, SA: FG",
            Seq2SeqVariant::BartLike,
            AffinityModel::FineGrained,
        ),
        (
            "QU: GPT-3, SA: FG",
            Seq2SeqVariant::Gpt3Like,
            AffinityModel::FineGrained,
        ),
        (
            "QU: BART, SA: GPT-3 CG",
            Seq2SeqVariant::BartLike,
            AffinityModel::CoarseGrained,
        ),
    ];

    let mut table = TableWriter::new(&[
        "Benchmark",
        variants[0].0,
        variants[1].0,
        variants[2].0,
        "Paper (BART+FG / GPT-3+FG / BART+CG)",
    ]);

    for flavor in KgFlavor::ALL {
        let instance = BenchmarkSuite::build_one(flavor, scale);
        let mut measured = Vec::new();
        for (_, seq2seq, affinity) in variants {
            let system = KgqanSystem::with_parts(
                QuestionUnderstanding::train_with_variant(seq2seq),
                kgqan_config_variant(seq2seq, affinity),
            );
            let (report, _) = run_system_on_benchmark(&system, &instance);
            measured.push(pct(report.macro_f1));
        }
        let paper = PAPER_TABLE4_F1
            .iter()
            .find(|(b, _, _, _)| *b == instance.benchmark.name)
            .map(|(_, a, b, c)| format!("{a:.2} / {b:.2} / {c:.2}"))
            .unwrap_or_else(|| "-".into());
        table.row(&[
            instance.benchmark.name.clone(),
            measured[0].clone(),
            measured[1].clone(),
            measured[2].clone(),
            paper,
        ]);
    }

    table.print("Table 4 (measured F1 per configuration vs. paper)");
    println!(
        "Paper shape to check: the default (BART-like QU + fine-grained affinity) wins in most\n\
         rows, and the coarse-grained affinity degrades most on the scholarly KGs (DBLP, MAG)."
    );
}
