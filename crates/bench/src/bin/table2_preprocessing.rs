//! Regenerates **Table 2**: benchmark statistics, KG sizes and the
//! pre-processing (indexing) cost of EDGQA (Falcon-like) and gAnswer, with
//! KGQAn's zero-pre-processing row for contrast.
//!
//! ```text
//! cargo run --release -p kgqan-bench --bin table2_preprocessing [-- --scale smoke]
//! ```

use kgqan::QuestionUnderstanding;
use kgqan_bench::harness::{build_systems, default_kgqan_config, parse_scale};
use kgqan_bench::table::TableWriter;
use kgqan_benchmarks::{BenchmarkSuite, KgFlavor};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = parse_scale(&args);
    println!("Table 2 — benchmarks, KG size and pre-processing cost (scale: {scale:?})");

    let mut table = TableWriter::new(&[
        "Benchmark",
        "#Questions",
        "KG Name",
        "#Triples",
        "EDGQA index (ms)",
        "EDGQA index (KB)",
        "gAnswer index (ms)",
        "gAnswer index (KB)",
        "KGQAn pre-processing",
    ]);

    for flavor in KgFlavor::ALL {
        let instance = BenchmarkSuite::build_one(flavor, scale);
        let systems = build_systems(
            &instance,
            QuestionUnderstanding::train_default(),
            default_kgqan_config(),
        );
        let stats = instance.kg.store.stats();
        let find = |name: &str| {
            systems
                .preprocessing
                .iter()
                .find(|(n, _)| n.starts_with(name))
                .map(|(_, s)| *s)
                .unwrap_or_default()
        };
        let edgqa = find("EDGQA");
        let ganswer = find("gAnswer");
        table.row(&[
            instance.benchmark.name.clone(),
            instance.benchmark.len().to_string(),
            flavor.label().to_string(),
            stats.triples.to_string(),
            format!("{:.1}", edgqa.duration.as_secs_f64() * 1000.0),
            format!("{:.1}", edgqa.index_bytes as f64 / 1024.0),
            format!("{:.1}", ganswer.duration.as_secs_f64() * 1000.0),
            format!("{:.1}", ganswer.index_bytes as f64 / 1024.0),
            "none (0 ms, 0 KB)".to_string(),
        ]);
    }

    table.print("Table 2 (measured on the synthetic stand-in KGs)");
    println!(
        "Paper shape to check: baseline indexing cost grows with KG size (MAG largest),\n\
         EDGQA/Falcon indexing is slower than gAnswer's, and KGQAn needs no pre-processing."
    );
}
