//! Compares a fresh perf run against the committed `BENCH_<area>.json`
//! baselines and fails (exit 1) on above-threshold regressions — the CI
//! regression gate of the persisted perf trajectory.
//!
//! ```text
//! cargo run --release -p kgqan-bench --bin perf_diff -- \
//!     --baseline-dir . --current-dir target/bench-report
//! ```
//!
//! Flags (all optional):
//!
//! * `--baseline-dir <dir>` — where the committed artifacts live
//!   (default `.`, the repo root).
//! * `--current-dir <dir>` — the fresh run to judge (default
//!   `target/bench-report`).
//! * `--warn-ratio` / `--fail-ratio` / `--min-delta-ns` /
//!   `--probe-fail-ratio` — override the thresholds; the corresponding
//!   `KGQAN_PERF_*` environment variables work too (flags win). Without
//!   overrides the defaults depend on smoke mode: a smoke run (or a smoke
//!   baseline) gets much looser timing ratios.
//!
//! Exit codes: 0 clean, 1 regression(s) at or above the fail threshold,
//! 2 usage/environment errors (e.g. no artifacts found).

use std::path::Path;
use std::process::ExitCode;

use kgqan_bench::perftrack::{diff_reports, failures, markdown_table, AreaReport, DiffConfig};

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.windows(2).find(|w| w[0] == flag).map(|w| w[1].clone())
}

/// Resolves one threshold: CLI flag, then environment variable, then the
/// smoke-dependent default.
fn threshold(args: &[String], flag: &str, env: &str, default: f64) -> Result<f64, String> {
    let source = flag_value(args, flag).or_else(|| std::env::var(env).ok());
    match source {
        Some(text) => text
            .parse::<f64>()
            .map_err(|_| format!("{flag}/{env}: '{text}' is not a number")),
        None => Ok(default),
    }
}

/// Loads every `BENCH_*.json` artifact in `dir`, sorted by file name.
fn load_reports(dir: &Path) -> Result<Vec<AreaReport>, String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    let mut paths: Vec<_> = entries
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|path| {
            path.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        })
        .collect();
    paths.sort();
    let mut reports = Vec::new();
    for path in paths {
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        reports.push(AreaReport::from_json(&text).map_err(|e| format!("{}: {e}", path.display()))?);
    }
    Ok(reports)
}

fn run() -> Result<bool, String> {
    let args: Vec<String> = std::env::args().collect();
    let baseline_dir = flag_value(&args, "--baseline-dir").unwrap_or_else(|| ".".to_string());
    let current_dir =
        flag_value(&args, "--current-dir").unwrap_or_else(|| "target/bench-report".to_string());

    let baselines = load_reports(Path::new(&baseline_dir))?;
    let current = load_reports(Path::new(&current_dir))?;
    if baselines.is_empty() {
        return Err(format!(
            "no BENCH_*.json baselines in {baseline_dir} — refresh them with:\n  \
             cargo run --release -p kgqan-bench --bin perf_report -- --out-dir ."
        ));
    }
    if current.is_empty() {
        return Err(format!(
            "no BENCH_*.json artifacts in {current_dir} — produce them with:\n  \
             cargo run --release -p kgqan-bench --bin perf_report -- --out-dir {current_dir}"
        ));
    }

    // A smoke run on either side means the wall-clock numbers carry CI
    // noise and likely come from different machines: loosen the timing
    // thresholds (the deterministic probe gate stays tight regardless).
    let smoke = baselines.iter().chain(&current).any(|r| r.smoke);
    let defaults = DiffConfig::defaults(smoke);
    let cfg = DiffConfig {
        warn_ratio: threshold(
            &args,
            "--warn-ratio",
            "KGQAN_PERF_WARN_RATIO",
            defaults.warn_ratio,
        )?,
        fail_ratio: threshold(
            &args,
            "--fail-ratio",
            "KGQAN_PERF_FAIL_RATIO",
            defaults.fail_ratio,
        )?,
        min_delta_ns: threshold(
            &args,
            "--min-delta-ns",
            "KGQAN_PERF_MIN_DELTA_NS",
            defaults.min_delta_ns,
        )?,
        probe_fail_ratio: threshold(
            &args,
            "--probe-fail-ratio",
            "KGQAN_PERF_PROBE_FAIL_RATIO",
            defaults.probe_fail_ratio,
        )?,
    };

    let entries = diff_reports(&baselines, &current, &cfg);
    println!(
        "## Perf diff vs committed baselines (smoke={smoke}, warn {:.2}x, fail {:.2}x)\n",
        cfg.warn_ratio, cfg.fail_ratio
    );
    print!("{}", markdown_table(&entries));

    let failed = failures(&entries);
    if failed.is_empty() {
        println!(
            "\nperf_diff: OK — {} metrics within thresholds",
            entries.len()
        );
        return Ok(true);
    }
    println!(
        "\nperf_diff: {} regression(s) at or above the fail threshold:",
        failed.len()
    );
    for entry in &failed {
        println!(
            "  - {}/{} {} {:.2}x (baseline {} → current {})",
            entry.area, entry.name, entry.metric, entry.ratio, entry.base, entry.current
        );
    }
    println!(
        "\nIf this movement is intended, refresh the committed baselines with:\n  \
         cargo run --release -p kgqan-bench --bin perf_report -- --out-dir .\n\
         and commit the updated BENCH_*.json files."
    );
    Ok(false)
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(err) => {
            eprintln!("perf_diff: {err}");
            ExitCode::from(2)
        }
    }
}
