//! Closed-loop load generator for the HTTP serving front-end — the `serve`
//! area of the persisted perf trajectory.
//!
//! Starts `kgqan-server` in-process on an ephemeral port over a generated
//! DBpedia-flavoured KG, then drives it with N concurrent keep-alive
//! clients in a *closed loop*: each client waits for its response, thinks
//! for a fixed interval, then issues the next request. Per-request wall
//! latencies flow through the criterion shim's [`Stats`] so the records
//! look exactly like every other bench, and the merged `BENCH_serve.json`
//! lands in `--out-dir` where `perf_diff` gates it against the committed
//! baseline.
//!
//! ```text
//! # Fresh run into CI's scratch dir (what the perf-smoke job does):
//! cargo run --release -p kgqan-bench --bin perf_load -- --out-dir target/bench-report
//!
//! # Baseline refresh (rewrites the tracked root artifact):
//! cargo run --release -p kgqan-bench --bin perf_load -- --out-dir .
//! ```
//!
//! Flags: `--out-dir <dir>` (default `.`), `--clients <n>` and
//! `--requests <n>` (per client) override the scenario defaults.
//! `KGQAN_BENCH_SMOKE` shrinks the request budget the same way it shrinks
//! the criterion iteration budget, and is stamped into the artifact so the
//! diff gate loosens its thresholds.

use std::path::PathBuf;
use std::process::{Command, ExitCode};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use criterion::{record_json_line, smoke_mode, Stats};
use kgqan::{PoolConfig, QaService};
use kgqan_bench::perftrack::{merge_records, AreaReport, BenchRecord};
use kgqan_benchmarks::kg::{GeneratedKg, KgFlavor, KgScale};
use kgqan_endpoint::InProcessEndpoint;
use kgqan_server::{serve, HttpClient, ServerConfig, ServerHandle};

/// One closed-loop scenario: `clients` connections each issuing
/// `requests` requests with `think` pause between them.
struct Scenario {
    bench: String,
    clients: usize,
    requests: usize,
    think: Duration,
    method: &'static str,
    path: &'static str,
    content_type: &'static str,
    body: String,
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.windows(2).find(|w| w[0] == flag).map(|w| w[1].clone())
}

fn git_rev() -> String {
    for var in ["KGQAN_GIT_REV", "GITHUB_SHA"] {
        if let Ok(rev) = std::env::var(var) {
            if !rev.is_empty() {
                return rev;
            }
        }
    }
    Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|rev| rev.trim().to_string())
        .filter(|rev| !rev.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Runs one scenario to completion and returns the per-request latency
/// statistics. Every request must succeed (closed-loop load stays far
/// below the shedding thresholds); a non-200 status is a hard error.
fn run_scenario(handle: &ServerHandle, scenario: &Scenario) -> Result<Stats, String> {
    let addr = handle.addr();
    let workers: Vec<_> = (0..scenario.clients)
        .map(|_| {
            let scenario_body = scenario.body.clone();
            let (method, path, content_type) =
                (scenario.method, scenario.path, scenario.content_type);
            let (requests, think) = (scenario.requests, scenario.think);
            thread::spawn(move || -> Result<Vec<f64>, String> {
                let mut client = HttpClient::connect(addr);
                let mut latencies = Vec::with_capacity(requests);
                let body = (!scenario_body.is_empty()).then_some(scenario_body.as_bytes());
                for _ in 0..requests {
                    let started = Instant::now();
                    let response = client
                        .request(method, path, body, &[("content-type", content_type)])
                        .map_err(|e| format!("{method} {path}: {e}"))?;
                    latencies.push(started.elapsed().as_secs_f64() * 1e9);
                    if response.status != 200 {
                        return Err(format!(
                            "{method} {path}: status {} — {}",
                            response.status,
                            response.text()
                        ));
                    }
                    if !think.is_zero() {
                        thread::sleep(think);
                    }
                }
                Ok(latencies)
            })
        })
        .collect();

    let mut sample_ns = Vec::new();
    for worker in workers {
        sample_ns.extend(worker.join().map_err(|_| "client thread panicked")??);
    }
    let iters = sample_ns.len() as u64;
    Ok(Stats::from_sample_ns(sample_ns, iters))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let out_dir = PathBuf::from(flag_value(&args, "--out-dir").unwrap_or_else(|| ".".to_string()));
    let smoke = smoke_mode();
    // Closed-loop budget: smoke keeps CI's serving job inside a couple of
    // seconds; a full run gathers enough samples for a stable p50.
    let default_requests = if smoke { 12 } else { 120 };
    let clients = flag_value(&args, "--clients")
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(4);
    let requests = flag_value(&args, "--requests")
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(default_requests);

    let kg = GeneratedKg::generate(KgFlavor::Dbpedia10, KgScale::tiny());
    let spouse = kg
        .predicates
        .as_ref()
        .map(|voc| voc.spouse.clone())
        .unwrap_or_else(|| "http://dbpedia.org/ontology/spouse".to_string());
    let question = format!("Who is the spouse of {}?", kg.facts.people[3].name);
    let service = match QaService::builder()
        .endpoint(Arc::new(InProcessEndpoint::new(
            "DBpedia",
            kg.store.clone(),
        )))
        // A second mirror KG so the federate scenario fans out over two
        // real endpoints (full agreement: maximal merge work).
        .endpoint(Arc::new(InProcessEndpoint::new("Mirror", kg.store.clone())))
        .worker_pool(PoolConfig {
            workers: 2,
            queue_bound: 64,
        })
        .build()
    {
        Ok(service) => service,
        Err(err) => {
            eprintln!("perf_load: cannot build service: {err}");
            return ExitCode::FAILURE;
        }
    };
    let mut handle = match serve(service, "127.0.0.1:0", ServerConfig::default()) {
        Ok(handle) => handle,
        Err(err) => {
            eprintln!("perf_load: cannot start server: {err}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "perf_load: serving on {} (smoke={smoke}, {clients} clients x {requests} requests)",
        handle.addr()
    );

    let scenarios = [
        Scenario {
            bench: format!("ask/clients{clients}"),
            clients,
            requests,
            think: Duration::from_millis(2),
            method: "POST",
            path: "/kg/DBpedia/ask",
            content_type: "application/json",
            body: format!("{{\"question\": {:?}, \"id\": \"load\"}}", question),
        },
        Scenario {
            bench: format!("sparql/clients{clients}"),
            clients,
            requests,
            think: Duration::from_millis(2),
            method: "POST",
            path: "/kg/DBpedia/sparql",
            content_type: "application/sparql-query",
            body: format!("SELECT ?s ?o WHERE {{ ?s <{spouse}> ?o . }} LIMIT 10"),
        },
        Scenario {
            bench: format!("federate/clients{clients}"),
            clients,
            requests,
            think: Duration::from_millis(2),
            method: "POST",
            path: "/federate/ask",
            content_type: "application/json",
            body: format!(
                "{{\"question\": {:?}, \"kgs\": \"*\", \"id\": \"load\"}}",
                question
            ),
        },
        Scenario {
            bench: "healthz/clients1".to_string(),
            clients: 1,
            requests: requests * 2,
            think: Duration::ZERO,
            method: "GET",
            path: "/healthz",
            content_type: "application/json",
            body: String::new(),
        },
    ];

    let group = "serve_closed_loop";
    let mut records = Vec::new();
    for scenario in &scenarios {
        let stats = match run_scenario(&handle, scenario) {
            Ok(stats) => stats,
            Err(err) => {
                eprintln!("perf_load: scenario {}: {err}", scenario.bench);
                return ExitCode::FAILURE;
            }
        };
        println!(
            "perf_load: {group}/{:<20} p50 {:>10.3?}  p95 {:>10.3?}  ({} requests)",
            scenario.bench,
            Duration::from_secs_f64(stats.p50_ns / 1e9),
            Duration::from_secs_f64(stats.p95_ns / 1e9),
            stats.iters,
        );
        // The same single-line record format every criterion bench emits —
        // appended to KGQAN_BENCH_JSON when set, so perf_report's
        // merge-only mode can fold serving latency in with the rest.
        let line = record_json_line("serve", group, &scenario.bench, smoke, &stats);
        if let Some(path) = std::env::var_os("KGQAN_BENCH_JSON") {
            use std::io::Write as _;
            let appended = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
                .and_then(|mut file| writeln!(file, "{line}"));
            if let Err(err) = appended {
                eprintln!("perf_load: cannot append to KGQAN_BENCH_JSON: {err}");
            }
        }
        records.push(BenchRecord {
            area: "serve".to_string(),
            group: group.to_string(),
            bench: scenario.bench.clone(),
            smoke,
            samples: stats.samples,
            iters: stats.iters,
            mean_ns: stats.mean_ns,
            p50_ns: stats.p50_ns,
            p95_ns: stats.p95_ns,
            min_ns: stats.min_ns,
            iters_per_sec: stats.iters_per_sec,
        });
    }

    let metrics = handle.metrics();
    let (total_requests, total_errors) =
        kgqan_server::Route::ALL
            .iter()
            .fold((0u64, 0u64), |(requests, errors), route| {
                (
                    requests + metrics.requests(*route),
                    errors + metrics.errors(*route),
                )
            });
    println!(
        "perf_load: server handled {} requests ({} errors, {} shed, {} rate-limited)",
        total_requests,
        total_errors,
        metrics.load_shed.load(std::sync::atomic::Ordering::Relaxed),
        metrics
            .rate_limited
            .load(std::sync::atomic::Ordering::Relaxed),
    );
    handle.shutdown();

    if let Err(err) = std::fs::create_dir_all(&out_dir) {
        eprintln!("perf_load: cannot create {}: {err}", out_dir.display());
        return ExitCode::FAILURE;
    }
    let reports = merge_records(records, &git_rev(), smoke);
    for report in &reports {
        let path = out_dir.join(AreaReport::file_name(&report.area));
        if let Err(err) = std::fs::write(&path, report.to_json()) {
            eprintln!("perf_load: cannot write {}: {err}", path.display());
            return ExitCode::FAILURE;
        }
        println!(
            "perf_load: wrote {} ({} benches)",
            path.display(),
            report.benches.len()
        );
    }
    ExitCode::SUCCESS
}
