//! Regenerates **Table 3**: Macro precision / recall / F1 of NSQA (published
//! numbers), gAnswer, EDGQA and KGQAn on the five benchmarks.
//!
//! ```text
//! cargo run --release -p kgqan-bench --bin table3_answer_quality [-- --scale smoke]
//! ```

use kgqan::QuestionUnderstanding;
use kgqan_bench::harness::{
    build_systems, default_kgqan_config, parse_scale, run_system_on_benchmark,
};
use kgqan_bench::published::{
    NSQA_LCQUAD, NSQA_QALD9, PAPER_EDGQA_TABLE3, PAPER_GANSWER_TABLE3, PAPER_KGQAN_TABLE3,
};
use kgqan_bench::table::{pct, TableWriter};
use kgqan_benchmarks::{BenchmarkSuite, KgFlavor};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = parse_scale(&args);
    println!("Table 3 — answer quality on the five benchmarks (scale: {scale:?})");

    let mut table = TableWriter::new(&["Benchmark", "System", "P", "R", "Macro F1", "Paper F1"]);

    for flavor in KgFlavor::ALL {
        let instance = BenchmarkSuite::build_one(flavor, scale);
        let systems = build_systems(
            &instance,
            QuestionUnderstanding::train_default(),
            default_kgqan_config(),
        );
        let name = instance.benchmark.name.clone();

        // NSQA: proprietary — published numbers only, as in the paper.
        match flavor {
            KgFlavor::Dbpedia10 => table.row(&[
                name.clone(),
                "NSQA (published)".into(),
                format!("{:.2}", NSQA_QALD9.precision),
                format!("{:.2}", NSQA_QALD9.recall),
                format!("{:.2}", NSQA_QALD9.f1),
                format!("{:.2}", NSQA_QALD9.f1),
            ]),
            KgFlavor::Dbpedia04 => table.row(&[
                name.clone(),
                "NSQA (published)".into(),
                format!("{:.2}", NSQA_LCQUAD.precision),
                format!("{:.2}", NSQA_LCQUAD.recall),
                format!("{:.2}", NSQA_LCQUAD.f1),
                format!("{:.2}", NSQA_LCQUAD.f1),
            ]),
            _ => table.row(&[
                name.clone(),
                "NSQA (published)".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
            ]),
        }

        let paper_f1 = |rows: &[(&str, kgqan_bench::published::PublishedPRF)]| {
            rows.iter()
                .find(|(b, _)| *b == name)
                .map(|(_, prf)| format!("{:.2}", prf.f1))
                .unwrap_or_else(|| "-".into())
        };

        let runs: Vec<(&dyn kgqan_baselines::QaSystem, String)> = vec![
            (&systems.ganswer, paper_f1(PAPER_GANSWER_TABLE3)),
            (&systems.edgqa, paper_f1(PAPER_EDGQA_TABLE3)),
            (&systems.kgqan, paper_f1(PAPER_KGQAN_TABLE3)),
        ];
        for (system, paper) in runs {
            let (report, _) = run_system_on_benchmark(system, &instance);
            table.row(&[
                name.clone(),
                report.system.clone(),
                pct(report.macro_precision),
                pct(report.macro_recall),
                pct(report.macro_f1),
                paper,
            ]);
        }
    }

    table.print("Table 3 (measured vs. paper-reported F1)");
    println!(
        "Paper shape to check: KGQAn is competitive on QALD-9/LC-QuAD and wins by a large\n\
         margin on the unseen KGs; gAnswer collapses on DBLP/MAG (0 on MAG); EDGQA collapses\n\
         on DBLP/MAG."
    );
}
