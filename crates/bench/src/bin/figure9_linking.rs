//! Regenerates **Figure 9**: entity- and relation-linking precision / recall
//! / F1 on the LC-QuAD-like linking gold data, for gAnswer, EDGQA and KGQAn,
//! together with each system's final (end-to-end) F1 on the same benchmark —
//! the horizontal lines of the paper's figure.
//!
//! ```text
//! cargo run --release -p kgqan-bench --bin figure9_linking [-- --scale smoke]
//! ```

use kgqan::QuestionUnderstanding;
use kgqan_bench::harness::{
    build_systems, default_kgqan_config, parse_scale, run_system_on_benchmark,
};
use kgqan_bench::linking_eval::{evaluate_linking, LinkerUnderTest};
use kgqan_bench::table::{pct, TableWriter};
use kgqan_benchmarks::{BenchmarkSuite, KgFlavor};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = parse_scale(&args);
    println!(
        "Figure 9 — entity and relation linking on the LC-QuAD-like benchmark (scale: {scale:?})"
    );

    let instance = BenchmarkSuite::build_one(KgFlavor::Dbpedia04, scale);
    let systems = build_systems(
        &instance,
        QuestionUnderstanding::train_default(),
        default_kgqan_config(),
    );

    let mut table = TableWriter::new(&[
        "System",
        "Entity P",
        "Entity R",
        "Entity F1",
        "Relation P",
        "Relation R",
        "Relation F1",
        "Final F1 (end-to-end)",
    ]);

    let runs: Vec<(&str, LinkerUnderTest, &dyn kgqan_baselines::QaSystem)> = vec![
        (
            "gAnswer",
            LinkerUnderTest::GAnswer(&systems.ganswer),
            &systems.ganswer,
        ),
        (
            "EDGQA",
            LinkerUnderTest::Edgqa(&systems.edgqa),
            &systems.edgqa,
        ),
        ("KGQAn", LinkerUnderTest::Kgqan, &systems.kgqan),
    ];

    for (name, linker, system) in runs {
        let scores = evaluate_linking(&linker, &instance);
        let (report, _) = run_system_on_benchmark(system, &instance);
        table.row(&[
            name.to_string(),
            pct(scores.entity_precision),
            pct(scores.entity_recall),
            pct(scores.entity_f1),
            pct(scores.relation_precision),
            pct(scores.relation_recall),
            pct(scores.relation_f1),
            pct(report.macro_f1),
        ]);
    }

    table.print("Figure 9 (linking quality vs. final F1)");
    println!(
        "Paper shape to check: KGQAn's final F1 is close to its entity-linking F1 (the\n\
         post-filtering recovers the precision its recall-oriented linking gives up), while\n\
         gAnswer's weak QU drags its linking and final scores down."
    );
}
