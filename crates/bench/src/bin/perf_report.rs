//! Runs the whole criterion bench suite with JSONL recording enabled and
//! merges the records into per-area `BENCH_<area>.json` artifacts — the
//! persisted perf trajectory CI diffs against the committed baselines.
//!
//! ```text
//! # Fresh run into a scratch dir (what CI's perf-smoke job does):
//! cargo run --release -p kgqan-bench --bin perf_report -- --out-dir target/bench-report
//!
//! # One-command baseline refresh (rewrites the tracked root artifacts):
//! cargo run --release -p kgqan-bench --bin perf_report -- --out-dir .
//! ```
//!
//! Flags:
//!
//! * `--out-dir <dir>` — where the merged `BENCH_<area>.json` files land
//!   (default `.`). The raw JSONL scratch file is written next to them as
//!   `bench-samples.jsonl` (gitignored).
//! * `--merge-only` — skip running the suite; merge an existing JSONL file.
//! * `--jsonl <path>` — override the JSONL scratch path.
//!
//! Respects `KGQAN_BENCH_SMOKE` (forwarded to the benches, and stamped into
//! the artifacts so `perf_diff` can loosen its thresholds). The git
//! revision comes from `KGQAN_GIT_REV`, then `GITHUB_SHA`, then
//! `git rev-parse`.

use std::path::{Path, PathBuf};
use std::process::{Command, ExitCode};

use kgqan_bench::perftrack::{self, AreaReport};

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.windows(2).find(|w| w[0] == flag).map(|w| w[1].clone())
}

fn git_rev() -> String {
    for var in ["KGQAN_GIT_REV", "GITHUB_SHA"] {
        if let Ok(rev) = std::env::var(var) {
            if !rev.is_empty() {
                return rev;
            }
        }
    }
    Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|rev| rev.trim().to_string())
        .filter(|rev| !rev.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Runs `cargo bench -p kgqan-bench --benches` with `KGQAN_BENCH_JSON`
/// pointing at `jsonl` — every bench executable (store, sparql, planner,
/// service, cache, e2e incl. affinity/linking) appends its records there.
fn run_suite(jsonl: &Path) -> Result<(), String> {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let jsonl_abs = std::env::current_dir()
        .map_err(|e| format!("cannot resolve cwd: {e}"))?
        .join(jsonl);
    // cargo runs bench executables with the package dir as cwd, so the
    // recording path must be absolute.
    let status = Command::new(cargo)
        .args(["bench", "-p", "kgqan-bench", "--benches"])
        .env("KGQAN_BENCH_JSON", &jsonl_abs)
        .status()
        .map_err(|e| format!("cannot spawn cargo bench: {e}"))?;
    if !status.success() {
        return Err(format!("cargo bench failed with {status}"));
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let out_dir = PathBuf::from(flag_value(&args, "--out-dir").unwrap_or_else(|| ".".to_string()));
    let jsonl = flag_value(&args, "--jsonl")
        .map(PathBuf::from)
        .unwrap_or_else(|| out_dir.join("bench-samples.jsonl"));
    let merge_only = args.iter().any(|a| a == "--merge-only");
    let smoke = std::env::var_os("KGQAN_BENCH_SMOKE").is_some();

    if let Err(err) = std::fs::create_dir_all(&out_dir) {
        eprintln!("perf_report: cannot create {}: {err}", out_dir.display());
        return ExitCode::FAILURE;
    }
    if !merge_only {
        // Stale records from a previous run must not leak into this one.
        let _ = std::fs::remove_file(&jsonl);
        println!(
            "perf_report: running the bench suite (smoke={smoke}), recording to {}",
            jsonl.display()
        );
        if let Err(err) = run_suite(&jsonl) {
            eprintln!("perf_report: {err}");
            return ExitCode::FAILURE;
        }
    }

    let text = match std::fs::read_to_string(&jsonl) {
        Ok(text) => text,
        Err(err) => {
            eprintln!("perf_report: cannot read {}: {err}", jsonl.display());
            return ExitCode::FAILURE;
        }
    };
    let records = match kgqan_bench::perftrack::parse_jsonl(&text) {
        Ok(records) => records,
        Err(err) => {
            eprintln!("perf_report: {err}");
            return ExitCode::FAILURE;
        }
    };
    if records.is_empty() {
        eprintln!("perf_report: no bench records in {}", jsonl.display());
        return ExitCode::FAILURE;
    }

    let mut reports = perftrack::merge_records(records, &git_rev(), smoke);
    // Deterministic rows-scanned counters ride with the planner area: they
    // are exact (no wall-clock noise), so the diff gate holds them tight.
    let probes = perftrack::planner_probes();
    match reports.iter_mut().find(|r| r.area == "planner") {
        Some(report) => report.probes = probes,
        None => eprintln!("perf_report: no planner bench records; probes dropped"),
    }

    for report in &reports {
        let path = out_dir.join(AreaReport::file_name(&report.area));
        if let Err(err) = std::fs::write(&path, report.to_json()) {
            eprintln!("perf_report: cannot write {}: {err}", path.display());
            return ExitCode::FAILURE;
        }
        println!(
            "perf_report: wrote {} ({} benches, {} probes)",
            path.display(),
            report.benches.len(),
            report.probes.len()
        );
    }
    ExitCode::SUCCESS
}
