//! Parameter ablation for the four KGQAn knobs of §7.1.6: *Max Fetched
//! Vertices*, *Number of Vertices*, *Number of Predicates* and *Max number
//! of Queries*.  Not a table in the paper, but DESIGN.md calls these out as
//! the tunables whose defaults (400 / 1 / 20 / 40) the paper justifies; this
//! harness shows how F1 on the QALD-9-like benchmark responds to each.
//!
//! ```text
//! cargo run --release -p kgqan-bench --bin ablation_params [-- --scale smoke]
//! ```

use kgqan::{KgqanConfig, LinkerConfig, QuestionUnderstanding};
use kgqan_baselines::KgqanSystem;
use kgqan_bench::harness::{parse_scale, run_system_on_benchmark};
use kgqan_bench::table::{pct, TableWriter};
use kgqan_benchmarks::{BenchmarkSuite, KgFlavor};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = parse_scale(&args);
    println!("Parameter ablation — the four KGQAn knobs (scale: {scale:?})");

    let instance = BenchmarkSuite::build_one(KgFlavor::Dbpedia10, scale);

    let configurations: Vec<(String, KgqanConfig)> = vec![
        (
            "defaults (maxVR=400, k_v=1, k_p=20, k_q=40)".into(),
            KgqanConfig::default(),
        ),
        (
            "maxVR=50".into(),
            KgqanConfig {
                linker: LinkerConfig {
                    max_fetched_vertices: 50,
                    ..LinkerConfig::default()
                },
                ..KgqanConfig::default()
            },
        ),
        (
            "k_v=3 vertices per node".into(),
            KgqanConfig {
                linker: LinkerConfig {
                    num_vertices: 3,
                    ..LinkerConfig::default()
                },
                ..KgqanConfig::default()
            },
        ),
        (
            "k_p=5 predicates per edge".into(),
            KgqanConfig {
                linker: LinkerConfig {
                    num_predicates: 5,
                    ..LinkerConfig::default()
                },
                ..KgqanConfig::default()
            },
        ),
        (
            "k_q=5 candidate queries".into(),
            KgqanConfig {
                max_candidate_queries: 5,
                ..KgqanConfig::default()
            },
        ),
        (
            "k_q=1 candidate query".into(),
            KgqanConfig {
                max_candidate_queries: 1,
                ..KgqanConfig::default()
            },
        ),
    ];

    let mut table = TableWriter::new(&["Configuration", "P", "R", "Macro F1"]);
    for (label, config) in configurations {
        let system = KgqanSystem::with_parts(QuestionUnderstanding::train_default(), config);
        let (report, _) = run_system_on_benchmark(&system, &instance);
        table.row(&[
            label,
            pct(report.macro_precision),
            pct(report.macro_recall),
            pct(report.macro_f1),
        ]);
    }

    table.print("KGQAn parameter ablation on the QALD-9-like benchmark");
}
