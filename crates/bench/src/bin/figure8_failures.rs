//! Regenerates **Figure 8**: number of failing questions (recall = 0 and
//! F1 = 0) per system and benchmark, split into failures caused by question
//! understanding vs. other causes (linking, execution, filtration).
//!
//! ```text
//! cargo run --release -p kgqan-bench --bin figure8_failures [-- --scale smoke]
//! ```

use kgqan::QuestionUnderstanding;
use kgqan_baselines::QaSystem;
use kgqan_bench::harness::{
    build_systems, default_kgqan_config, parse_scale, run_system_on_benchmark,
};
use kgqan_bench::table::TableWriter;
use kgqan_benchmarks::{BenchmarkSuite, KgFlavor};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = parse_scale(&args);
    println!("Figure 8 — failing questions per benchmark (scale: {scale:?})");

    // Figure 8 covers QALD-9, YAGO, DBLP and MAG.
    let flavors = [
        KgFlavor::Dbpedia10,
        KgFlavor::Yago,
        KgFlavor::Dblp,
        KgFlavor::Mag,
    ];

    let mut table = TableWriter::new(&[
        "Benchmark",
        "System",
        "#Questions",
        "Failures (R=0, F1=0)",
        "  due to QU",
        "  due to other",
    ]);

    for flavor in flavors {
        let instance = BenchmarkSuite::build_one(flavor, scale);
        let systems = build_systems(
            &instance,
            QuestionUnderstanding::train_default(),
            default_kgqan_config(),
        );
        let evaluated: Vec<&dyn QaSystem> = vec![&systems.ganswer, &systems.edgqa, &systems.kgqan];
        for system in evaluated {
            let (report, _) = run_system_on_benchmark(system, &instance);
            table.row(&[
                instance.benchmark.name.clone(),
                report.system.clone(),
                instance.benchmark.len().to_string(),
                report.failures.total_failures.to_string(),
                report.failures.due_to_question_understanding.to_string(),
                report.failures.due_to_other().to_string(),
            ]);
        }
    }

    table.print("Figure 8 (total failures, split by cause)");
    println!(
        "Paper shape to check: KGQAn fails on the fewest questions overall and has the fewest\n\
         QU-caused failures, especially on the unseen domain benchmarks (DBLP, MAG)."
    );
}
