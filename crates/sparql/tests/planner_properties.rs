//! Property-based tests for the cost-based planner: reordering joins,
//! pushing filters down and streaming with early termination must be
//! *semantically transparent*.  Every query is executed twice — through the
//! planner ([`execute`]) and through the naive AST-order reference
//! evaluator ([`execute_naive`]) — and the row multisets must coincide.

use kgqan_rdf::{Store, Term, Triple};
use kgqan_sparql::ast::{Expression, GraphPattern, Query, QueryForm, TriplePatternAst, VarOrTerm};
use kgqan_sparql::{execute, execute_naive, Planner, QueryResults};
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Store generation: small closed alphabets so joins, repeated variables and
// text-search hits all occur frequently.
// ---------------------------------------------------------------------------

fn arb_node() -> impl Strategy<Value = Term> {
    (0u32..20).prop_map(|i| Term::iri(format!("http://g/n{i}")))
}

fn arb_predicate() -> impl Strategy<Value = Term> {
    (0u32..5).prop_map(|i| Term::iri(format!("http://g/p{i}")))
}

/// String literals drawn from a tiny word pool, so `bif:contains` probes
/// and `CONTAINS` filters actually match.
fn arb_label() -> impl Strategy<Value = Term> {
    prop_oneof![
        Just("baltic sea"),
        Just("north sea shore"),
        Just("danish straits"),
        Just("kaliningrad city"),
        Just("city on the shore"),
    ]
    .prop_map(Term::literal_str)
}

fn arb_object() -> impl Strategy<Value = Term> {
    prop_oneof![arb_node(), arb_label(), (0i64..400).prop_map(Term::integer),]
}

fn arb_triple() -> impl Strategy<Value = Triple> {
    (arb_node(), arb_predicate(), arb_object()).prop_map(|(s, p, o)| Triple::new(s, p, o))
}

fn arb_store() -> impl Strategy<Value = Store> {
    prop::collection::vec(arb_triple(), 0..36).prop_map(|triples| {
        let mut store = Store::new();
        store.insert_all(triples);
        store
    })
}

// ---------------------------------------------------------------------------
// Pattern generation: variables from a 4-name pool (repeats guaranteed),
// every position independently var-or-term, plus text search, OPTIONAL,
// UNION and FILTER shapes.
// ---------------------------------------------------------------------------

fn arb_var() -> impl Strategy<Value = String> {
    (0u32..4).prop_map(|i| format!("v{i}"))
}

fn arb_subject_pos() -> impl Strategy<Value = VarOrTerm> {
    prop_oneof![
        arb_var().prop_map(VarOrTerm::Var),
        arb_var().prop_map(VarOrTerm::Var),
        arb_node().prop_map(VarOrTerm::Term),
    ]
}

fn arb_predicate_pos() -> impl Strategy<Value = VarOrTerm> {
    prop_oneof![
        arb_var().prop_map(VarOrTerm::Var),
        arb_predicate().prop_map(VarOrTerm::Term),
        arb_predicate().prop_map(VarOrTerm::Term),
        arb_predicate().prop_map(VarOrTerm::Term),
    ]
}

fn arb_object_pos() -> impl Strategy<Value = VarOrTerm> {
    prop_oneof![
        arb_var().prop_map(VarOrTerm::Var),
        arb_var().prop_map(VarOrTerm::Var),
        arb_object().prop_map(VarOrTerm::Term),
    ]
}

fn arb_tp() -> impl Strategy<Value = TriplePatternAst> {
    (arb_subject_pos(), arb_predicate_pos(), arb_object_pos())
        .prop_map(|(s, p, o)| TriplePatternAst::new(s, p, o))
}

/// A valid text-search pattern: variable subject, `bif:contains` predicate,
/// constant literal query string.
fn arb_text_tp() -> impl Strategy<Value = TriplePatternAst> {
    (
        arb_var(),
        prop_oneof![Just("'sea'"), Just("'danish' OR 'city'"), Just("'shore'")],
    )
        .prop_map(|(v, words)| {
            TriplePatternAst::new(
                VarOrTerm::Var(v),
                VarOrTerm::Term(Term::iri("bif:contains")),
                VarOrTerm::Term(Term::literal_str(words)),
            )
        })
}

/// A BGP of 1–3 ordinary patterns, optionally carrying a text-search
/// pattern at a random position.
fn arb_bgp() -> impl Strategy<Value = GraphPattern> {
    (
        prop::collection::vec(arb_tp(), 1..4),
        prop::option::of(arb_text_tp()),
        any::<bool>(),
    )
        .prop_map(|(mut tps, text, front)| {
            if let Some(text) = text {
                if front {
                    tps.insert(0, text);
                } else {
                    tps.push(text);
                }
            }
            GraphPattern::Bgp(tps)
        })
}

fn arb_filter_expr() -> impl Strategy<Value = Expression> {
    let var = || arb_var().prop_map(|v| Box::new(Expression::Var(v)));
    prop_oneof![
        (var(), var()).prop_map(|(a, b)| Expression::Neq(a, b)),
        arb_var().prop_map(Expression::Bound),
        (var(), 0i64..400)
            .prop_map(|(a, n)| Expression::Gt(a, Box::new(Expression::Constant(Term::integer(n))))),
        (var(), prop_oneof![Just("sea"), Just("city"), Just("n1")]).prop_map(|(a, w)| {
            Expression::Contains(a, Box::new(Expression::Constant(Term::literal_str(w))))
        }),
    ]
}

/// Composite patterns: plain BGPs, joins, OPTIONAL, UNION, filtered BGPs
/// and a filtered OPTIONAL — the shapes KGQAn's candidate queries take.
fn arb_pattern() -> impl Strategy<Value = GraphPattern> {
    prop_oneof![
        arb_bgp(),
        (arb_bgp(), arb_bgp()).prop_map(|(a, b)| GraphPattern::Join(Box::new(a), Box::new(b))),
        (arb_bgp(), arb_bgp()).prop_map(|(a, b)| GraphPattern::Optional(Box::new(a), Box::new(b))),
        (arb_bgp(), arb_bgp()).prop_map(|(a, b)| GraphPattern::Union(Box::new(a), Box::new(b))),
        (arb_bgp(), arb_filter_expr())
            .prop_map(|(inner, e)| GraphPattern::Filter(Box::new(inner), e)),
        (arb_bgp(), arb_bgp(), arb_filter_expr()).prop_map(|(a, b, e)| GraphPattern::Filter(
            Box::new(GraphPattern::Optional(Box::new(a), Box::new(b))),
            e
        )),
    ]
}

fn select_query(pattern: GraphPattern, distinct: bool) -> Query {
    Query {
        form: QueryForm::Select {
            variables: Vec::new(),
            distinct,
        },
        pattern,
        limit: None,
        offset: None,
    }
}

/// Canonical multiset representation of a solution sequence.
fn row_multiset(results: &QueryResults) -> Vec<String> {
    let mut rows: Vec<String> = results.rows().iter().map(|b| format!("{b:?}")).collect();
    rows.sort();
    rows
}

proptest! {
    /// Planned (reordered, filter-pushed, streaming) execution returns
    /// exactly the naive AST-order evaluator's row multiset, over random
    /// stores and patterns including OPTIONAL/UNION/FILTER and repeated
    /// variables.
    #[test]
    fn planned_equals_naive(store in arb_store(), pattern in arb_pattern(), distinct in any::<bool>()) {
        let query = select_query(pattern, distinct);
        let planned = execute(&store, &query).expect("planned execution succeeds");
        let naive = execute_naive(&store, &query).expect("naive execution succeeds");
        prop_assert_eq!(row_multiset(&planned), row_multiset(&naive));
    }

    /// ASK queries agree between the two evaluators.
    #[test]
    fn planned_ask_equals_naive(store in arb_store(), pattern in arb_pattern()) {
        let query = Query { form: QueryForm::Ask, pattern, limit: None, offset: None };
        let planned = execute(&store, &query).expect("planned execution succeeds");
        let naive = execute_naive(&store, &query).expect("naive execution succeeds");
        prop_assert_eq!(planned.as_boolean(), naive.as_boolean());
    }

    /// With LIMIT/OFFSET the planned page has the right length and every
    /// row it contains is a row of the unrestricted naive result.  (Which
    /// rows land on the page is order-dependent, and SPARQL fixes no order
    /// without ORDER BY.)
    #[test]
    fn planned_page_is_subset_of_naive_rows(
        store in arb_store(),
        pattern in arb_pattern(),
        distinct in any::<bool>(),
        limit in 0usize..8,
        offset in 0usize..4,
    ) {
        let mut query = select_query(pattern, distinct);
        let full_naive = execute_naive(&store, &query).expect("naive execution succeeds");
        let full_rows = row_multiset(&full_naive);

        query.limit = Some(limit);
        query.offset = Some(offset);
        let page = execute(&store, &query).expect("planned execution succeeds");

        // Text-search fan-out is capped at LIMIT+OFFSET, so a paged query
        // may legitimately see fewer text matches than the uncapped run;
        // the page can only ever be *shorter* than the clamp, never longer,
        // and never invent rows.  Without a text pattern the page length is
        // exact.
        let has_text = query
            .pattern
            .all_triple_patterns()
            .iter()
            .any(|tp| kgqan_sparql::eval::is_text_search_pattern(tp));
        let expected = full_rows.len().saturating_sub(offset).min(limit);
        if has_text {
            prop_assert!(
                page.rows().len() <= expected,
                "page of {} rows exceeds clamp {expected} (limit {limit} offset {offset})\nquery:\n{}",
                page.rows().len(), query.to_sparql()
            );
        } else {
            prop_assert_eq!(page.rows().len(), expected);
        }
        for row in page.rows() {
            let key = format!("{row:?}");
            prop_assert!(full_rows.contains(&key), "page row {key} not in full result\nquery:\n{}", query.to_sparql());
        }
    }

    /// A `LIMIT k` scan over a store with many matches stops after ~k index
    /// entries instead of materialising all of them.
    #[test]
    fn limit_bounds_rows_scanned(total in 50usize..300, k in 1usize..20) {
        let mut store = Store::new();
        for i in 0..total {
            store.insert(Triple::new(
                Term::iri(format!("http://g/e{i}")),
                Term::iri("http://g/p0"),
                Term::iri(format!("http://g/n{}", i % 7)),
            ));
        }
        let query = kgqan_sparql::parse_query(&format!(
            "SELECT ?s WHERE {{ ?s <http://g/p0> ?o . }} LIMIT {k}"
        ))
        .unwrap();
        let run = Planner::new(&store).plan(&query).execute().unwrap();
        prop_assert_eq!(run.results.rows().len(), k.min(total));
        prop_assert!(
            run.metrics.rows_scanned <= k as u64,
            "LIMIT {} scanned {} of {} rows",
            k, run.metrics.rows_scanned, total
        );
    }
}

/// A deterministic two-hop join: planned and naive execution agree, and the
/// executor reports its scan work.
#[test]
fn two_hop_join_agrees_with_naive_and_reports_work() {
    let mut store = Store::new();
    for i in 0..40 {
        store.insert(Triple::new(
            Term::iri(format!("http://g/n{}", i % 10)),
            Term::iri(format!("http://g/p{}", i % 3)),
            Term::iri(format!("http://g/n{}", (i + 1) % 10)),
        ));
    }
    let query = kgqan_sparql::parse_query(
        "SELECT ?a ?b ?c WHERE { ?a <http://g/p0> ?b . ?b <http://g/p1> ?c . }",
    )
    .unwrap();
    let run = Planner::new(&store).plan(&query).execute().unwrap();
    let naive = execute_naive(&store, &query).unwrap();
    assert_eq!(row_multiset(&run.results), row_multiset(&naive));
    assert!(run.metrics.rows_scanned >= run.metrics.rows_emitted);
}
