//! Determinism and equivalence properties of the morsel-parallel executor.
//!
//! The parallel path must be *invisible* in the results: for any query the
//! rows — including their order, and including `DISTINCT`/`OFFSET`/`LIMIT`
//! paging — must be byte-identical to the sequential streaming executor's,
//! which in turn must agree (as a multiset) with the naive AST-order
//! reference evaluator.  Worker count, morsel granularity and scheduling
//! jitter may never leak into answers.

use std::sync::Arc;
use std::time::Instant;

use kgqan_rdf::{LiveStore, Store, StoreSnapshot, Term, Triple};
use kgqan_sparql::ast::{Expression, GraphPattern, Query, QueryForm, TriplePatternAst, VarOrTerm};
use kgqan_sparql::{execute_naive, ExecOptions, ParallelConfig, Planner, QueryResults};
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Store / query generation: the same closed alphabets as the planner
// properties, so joins, repeated variables and text hits occur often.
// ---------------------------------------------------------------------------

fn arb_node() -> impl Strategy<Value = Term> {
    (0u32..20).prop_map(|i| Term::iri(format!("http://g/n{i}")))
}

fn arb_predicate() -> impl Strategy<Value = Term> {
    (0u32..5).prop_map(|i| Term::iri(format!("http://g/p{i}")))
}

fn arb_label() -> impl Strategy<Value = Term> {
    prop_oneof![
        Just("baltic sea"),
        Just("north sea shore"),
        Just("danish straits"),
        Just("kaliningrad city"),
    ]
    .prop_map(Term::literal_str)
}

fn arb_object() -> impl Strategy<Value = Term> {
    prop_oneof![arb_node(), arb_label(), (0i64..400).prop_map(Term::integer)]
}

fn arb_triple() -> impl Strategy<Value = Triple> {
    (arb_node(), arb_predicate(), arb_object()).prop_map(|(s, p, o)| Triple::new(s, p, o))
}

/// Random snapshots up to ~90 triples: big enough for multi-morsel
/// partitions, small enough to shrink well.
fn arb_snapshot() -> impl Strategy<Value = Arc<StoreSnapshot>> {
    prop::collection::vec(arb_triple(), 0..90).prop_map(|triples| {
        let mut store = Store::new();
        store.insert_all(triples);
        LiveStore::new(store).snapshot()
    })
}

fn arb_var() -> impl Strategy<Value = String> {
    (0u32..4).prop_map(|i| format!("v{i}"))
}

fn arb_subject_pos() -> impl Strategy<Value = VarOrTerm> {
    prop_oneof![
        arb_var().prop_map(VarOrTerm::Var),
        arb_var().prop_map(VarOrTerm::Var),
        arb_node().prop_map(VarOrTerm::Term),
    ]
}

fn arb_predicate_pos() -> impl Strategy<Value = VarOrTerm> {
    prop_oneof![
        arb_var().prop_map(VarOrTerm::Var),
        arb_predicate().prop_map(VarOrTerm::Term),
        arb_predicate().prop_map(VarOrTerm::Term),
    ]
}

fn arb_object_pos() -> impl Strategy<Value = VarOrTerm> {
    prop_oneof![
        arb_var().prop_map(VarOrTerm::Var),
        arb_object().prop_map(VarOrTerm::Term),
    ]
}

fn arb_tp() -> impl Strategy<Value = TriplePatternAst> {
    (arb_subject_pos(), arb_predicate_pos(), arb_object_pos())
        .prop_map(|(s, p, o)| TriplePatternAst::new(s, p, o))
}

fn arb_text_tp() -> impl Strategy<Value = TriplePatternAst> {
    (
        arb_var(),
        prop_oneof![Just("'sea'"), Just("'danish' OR 'city'"), Just("'shore'")],
    )
        .prop_map(|(v, words)| {
            TriplePatternAst::new(
                VarOrTerm::Var(v),
                VarOrTerm::Term(Term::iri("bif:contains")),
                VarOrTerm::Term(Term::literal_str(words)),
            )
        })
}

fn arb_bgp() -> impl Strategy<Value = GraphPattern> {
    (
        prop::collection::vec(arb_tp(), 1..4),
        prop::option::of(arb_text_tp()),
    )
        .prop_map(|(mut tps, text)| {
            if let Some(text) = text {
                tps.push(text);
            }
            GraphPattern::Bgp(tps)
        })
}

fn arb_filter_expr() -> impl Strategy<Value = Expression> {
    let var = || arb_var().prop_map(|v| Box::new(Expression::Var(v)));
    prop_oneof![
        (var(), var()).prop_map(|(a, b)| Expression::Neq(a, b)),
        arb_var().prop_map(Expression::Bound),
        (var(), prop_oneof![Just("sea"), Just("n1")]).prop_map(|(a, w)| {
            Expression::Contains(a, Box::new(Expression::Constant(Term::literal_str(w))))
        }),
    ]
}

/// BGPs, joins, OPTIONAL, UNION and filtered BGPs — everything the morsel
/// driver may sit underneath.
fn arb_pattern() -> impl Strategy<Value = GraphPattern> {
    prop_oneof![
        arb_bgp(),
        (arb_bgp(), arb_bgp()).prop_map(|(a, b)| GraphPattern::Join(Box::new(a), Box::new(b))),
        (arb_bgp(), arb_bgp()).prop_map(|(a, b)| GraphPattern::Optional(Box::new(a), Box::new(b))),
        (arb_bgp(), arb_bgp()).prop_map(|(a, b)| GraphPattern::Union(Box::new(a), Box::new(b))),
        (arb_bgp(), arb_filter_expr())
            .prop_map(|(inner, e)| GraphPattern::Filter(Box::new(inner), e)),
    ]
}

fn select_query(
    pattern: GraphPattern,
    distinct: bool,
    limit: Option<usize>,
    offset: Option<usize>,
) -> Query {
    Query {
        form: QueryForm::Select {
            variables: Vec::new(),
            distinct,
        },
        pattern,
        limit,
        offset,
    }
}

/// A config that fans out on stores of a handful of triples: every worker
/// is expected to absorb a single driver row, pages of any size may go
/// parallel, and each worker's share splits into several morsels.
fn eager(max_dop: usize, morsels_per_worker: usize) -> ParallelConfig {
    ParallelConfig {
        max_dop,
        rows_per_worker: 1.0,
        morsels_per_worker,
        min_page_rows: 0,
    }
}

fn run(snapshot: &Arc<StoreSnapshot>, query: &Query, config: ParallelConfig) -> QueryResults {
    Planner::for_shared_snapshot(snapshot)
        .with_parallelism(config)
        .plan(query)
        .execute()
        .expect("execution succeeds")
        .results
}

fn row_multiset(results: &QueryResults) -> Vec<String> {
    let mut rows: Vec<String> = results.rows().iter().map(|b| format!("{b:?}")).collect();
    rows.sort();
    rows
}

proptest! {
    /// Parallel execution at varying worker counts and morsel granularities
    /// returns the sequential executor's rows *byte-identically* — same
    /// rows, same order, same paging — and the sequential rows agree with
    /// the naive reference evaluator as a multiset.
    #[test]
    fn parallel_equals_sequential_equals_naive(
        snapshot in arb_snapshot(),
        pattern in arb_pattern(),
        distinct in any::<bool>(),
        page in prop::option::of((0usize..10, 0usize..4)),
        max_dop in 2usize..9,
        morsels_per_worker in 1usize..5,
    ) {
        let (limit, offset) = match page {
            Some((limit, offset)) => (Some(limit), Some(offset)),
            None => (None, None),
        };
        let query = select_query(pattern, distinct, limit, offset);

        let sequential = run(&snapshot, &query, eager(1, morsels_per_worker));
        let parallel = run(&snapshot, &query, eager(max_dop, morsels_per_worker));
        prop_assert!(
            parallel == sequential,
            "parallel rows diverge at dop {} / {} morsels-per-worker\nquery:\n{}",
            max_dop, morsels_per_worker, query.to_sparql()
        );

        // Unpaged queries must also match the naive evaluator's multiset
        // (paged text-search queries legitimately cap their fan-out, so the
        // planner-vs-naive paging laws live in planner_properties.rs).
        if limit.is_none() && offset.is_none() {
            let naive = execute_naive(&snapshot, &query).expect("naive execution succeeds");
            prop_assert!(
                row_multiset(&sequential) == row_multiset(&naive),
                "sequential rows diverge from naive\nquery:\n{}",
                query.to_sparql()
            );
        }
    }

    /// A deadline that expires mid-run yields a clean *prefix* of the full
    /// result (never reordered or invented rows) with the flag set.
    #[test]
    fn expired_deadline_yields_flagged_prefix(
        snapshot in arb_snapshot(),
        pattern in arb_pattern(),
        max_dop in 1usize..9,
    ) {
        let query = select_query(pattern, false, None, None);
        let plan = Planner::for_shared_snapshot(&snapshot)
            .with_parallelism(eager(max_dop, 2))
            .plan(&query);
        let full = plan.execute().expect("execution succeeds");
        let lapsed = plan
            .execute_with(ExecOptions { deadline: Some(Instant::now() - std::time::Duration::from_secs(1)) })
            .expect("execution succeeds");

        prop_assert!(lapsed.results.rows().len() <= full.results.rows().len());
        for (got, want) in lapsed.results.rows().iter().zip(full.results.rows()) {
            prop_assert_eq!(got, want);
        }
        if lapsed.results.rows().len() < full.results.rows().len() {
            prop_assert!(lapsed.metrics.deadline_exceeded);
        }
    }
}

/// The headline regression test: a skewed store large enough that the
/// driver scan splits into many morsels, a paging query with `DISTINCT`,
/// `OFFSET` and `LIMIT`, and the parallel path *provably engaged* — the
/// answer must be byte-identical between 1 and 8 workers.
#[test]
fn one_and_eight_workers_page_identically() {
    let mut store = Store::new();
    for i in 0..400 {
        let person = Term::iri(format!("http://g/person{i}"));
        // Zipf-ish: person i knows persons i+1 .. i+1+deg for a skewed deg.
        let degree = 1 + 40 / (1 + i % 13);
        for d in 1..=degree {
            store.insert(Triple::new(
                person.clone(),
                Term::iri("http://g/knows"),
                Term::iri(format!("http://g/person{}", (i + d) % 400)),
            ));
        }
        store.insert(Triple::new(
            person.clone(),
            Term::iri("http://g/city"),
            Term::iri(format!("http://g/city{}", i % 7)),
        ));
    }
    let snapshot = LiveStore::new(store).snapshot();

    let query = kgqan_sparql::parse_query(
        "SELECT DISTINCT ?city WHERE { \
           ?a <http://g/knows> ?b . ?b <http://g/city> ?city . \
         } OFFSET 2 LIMIT 3",
    )
    .expect("query parses");

    let sequential = Planner::for_shared_snapshot(&snapshot)
        .with_parallelism(eager(1, 4))
        .plan(&query)
        .execute()
        .expect("sequential run succeeds");
    assert!(
        sequential.metrics.parallel.is_none(),
        "max_dop 1 must stay sequential"
    );

    let parallel = Planner::for_shared_snapshot(&snapshot)
        .with_parallelism(eager(8, 4))
        .plan(&query)
        .execute()
        .expect("parallel run succeeds");
    let metrics = parallel
        .metrics
        .parallel
        .as_ref()
        .expect("parallel path must engage on this store");
    assert!(metrics.dop >= 1 && metrics.morsels >= 2);

    assert_eq!(parallel.results, sequential.results);
    assert_eq!(sequential.results.rows().len(), 3);
}
