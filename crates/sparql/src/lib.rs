//! # kgqan-sparql
//!
//! A SPARQL subset — lexer, parser, algebra, cost-based planner
//! ([`plan`]) and streaming executor — sufficient to run every query the
//! KGQAn pipeline and its baselines issue against an RDF endpoint:
//!
//! * `SELECT [DISTINCT] ?v … | * WHERE { … } [LIMIT n] [OFFSET n]`
//! * `ASK { … }`
//! * basic graph patterns with IRIs, prefixed names, literals and variables,
//! * `OPTIONAL { … }` (used by KGQAn to fetch the `rdf:type` of the main
//!   unknown for post-filtering, Section 6),
//! * `FILTER` expressions (comparisons, `CONTAINS`, `REGEX`, `LANG`, boolean
//!   connectives),
//! * the full-text extension predicates of the engines the paper targets:
//!   Virtuoso's `bif:contains`, Stardog's `textMatch` and Jena's
//!   `text:query`, all answered by the store's built-in text index
//!   (the `potentialRelevantVertices` query of Section 5.1).
//!
//! ## Example
//!
//! ```
//! use kgqan_rdf::{Store, Term, Triple};
//! use kgqan_sparql::execute_query;
//!
//! let mut store = Store::new();
//! store.insert(Triple::new(
//!     Term::iri("http://dbpedia.org/resource/Baltic_Sea"),
//!     Term::iri("http://dbpedia.org/property/outflow"),
//!     Term::iri("http://dbpedia.org/resource/Danish_straits"),
//! ));
//!
//! let results = execute_query(
//!     &store,
//!     "SELECT ?sea WHERE { ?sea <http://dbpedia.org/property/outflow> \
//!      <http://dbpedia.org/resource/Danish_straits> . }",
//! ).unwrap();
//! assert_eq!(results.rows().len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod error;
pub mod eval;
pub mod exec;
pub mod lexer;
pub mod parser;
pub mod plan;
pub mod pool;
pub mod results;

pub use ast::{Expression, GraphPattern, Query, QueryForm, TriplePatternAst, VarOrTerm};
pub use error::SparqlError;
pub use eval::{execute, execute_naive, execute_query, Evaluator};
pub use exec::ExecutorPool;
pub use parser::parse_query;
pub use plan::{
    explain, ExecMetrics, ExecOptions, ParallelConfig, ParallelMetrics, PhysicalPlan, PlanOp,
    PlanSummary, PlannedExecution, Planner, ServiceResolver,
};
pub use pool::{PoolConfig, PoolStats, SubmitError, Ticket, WorkerPool};
pub use results::{Binding, QueryResults, ResultSet};
