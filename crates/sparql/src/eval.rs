//! Query evaluation over the [`kgqan_rdf::Store`].
//!
//! The evaluator is a straightforward bottom-up interpreter:
//!
//! * basic graph patterns are evaluated with a selectivity-ordered
//!   nested-index-loop join (bound positions first, text-search patterns
//!   always first),
//! * `OPTIONAL` is a left outer join, `UNION` a concatenation, `FILTER` a
//!   post-selection,
//! * the full-text predicates (`bif:contains`, Stardog `textMatch`, Jena
//!   `text:query`) bind their subject to the string literals matched by the
//!   store's built-in text index, which is exactly how the engines the paper
//!   targets implement them.

use kgqan_rdf::text::tokenize;
use kgqan_rdf::{Store, Term, TriplePattern};

use crate::ast::{Expression, GraphPattern, Query, QueryForm, TriplePatternAst, VarOrTerm};
use crate::error::SparqlError;
use crate::parser::parse_query;
use crate::results::{Binding, QueryResults, ResultSet};

/// The IRIs accepted as full-text search predicates.  The first is Virtuoso's
/// (used verbatim in the paper's `potentialRelevantVertices` query); the
/// others are the equivalents the paper mentions for Stardog and Jena.
pub const TEXT_SEARCH_PREDICATES: &[&str] = &[
    "bif:contains",
    "http://www.openlinksw.com/schemas/bif#contains",
    "tag:stardog:api:property:textMatch",
    "stardog:textMatch",
    "http://jena.apache.org/text#query",
    "text:query",
];

/// Maximum number of literals a single text-search pattern may bind when the
/// query carries no LIMIT — a safety valve mirroring the engines' own caps.
const DEFAULT_TEXT_SEARCH_CAP: usize = 10_000;

/// Evaluate a parsed [`Query`] against a store.
pub fn execute(store: &Store, query: &Query) -> Result<QueryResults, SparqlError> {
    Evaluator::new(store).run(query)
}

/// Parse and evaluate a SPARQL string against a store.
pub fn execute_query(store: &Store, query: &str) -> Result<QueryResults, SparqlError> {
    let parsed = parse_query(query)?;
    execute(store, &parsed)
}

/// A query evaluator bound to a store.
pub struct Evaluator<'a> {
    store: &'a Store,
    text_cap: usize,
}

impl<'a> Evaluator<'a> {
    /// Create an evaluator over `store`.
    pub fn new(store: &'a Store) -> Self {
        Evaluator {
            store,
            text_cap: DEFAULT_TEXT_SEARCH_CAP,
        }
    }

    /// Run a query to completion.
    pub fn run(&self, query: &Query) -> Result<QueryResults, SparqlError> {
        // The LIMIT of the query also caps text-search fan-out, mirroring the
        // `LIMIT maxVR` clause of potentialRelevantVertices.
        let evaluator = Evaluator {
            store: self.store,
            text_cap: query.limit.unwrap_or(DEFAULT_TEXT_SEARCH_CAP),
        };
        let bindings = evaluator.eval_pattern(&query.pattern, vec![Binding::new()])?;

        match &query.form {
            QueryForm::Ask => Ok(QueryResults::Boolean(!bindings.is_empty())),
            QueryForm::Select {
                variables,
                distinct,
            } => {
                let projected: Vec<String> = if variables.is_empty() {
                    query.pattern.variables()
                } else {
                    variables.clone()
                };
                let mut rows: Vec<Binding> = bindings
                    .into_iter()
                    .map(|b| b.project(&projected))
                    .collect();
                if *distinct {
                    let mut seen = std::collections::BTreeSet::new();
                    rows.retain(|b| seen.insert(format!("{b}")));
                }
                if let Some(offset) = query.offset {
                    rows = rows.into_iter().skip(offset).collect();
                }
                if let Some(limit) = query.limit {
                    rows.truncate(limit);
                }
                Ok(QueryResults::Solutions(ResultSet::new(projected, rows)))
            }
        }
    }

    fn eval_pattern(
        &self,
        pattern: &GraphPattern,
        input: Vec<Binding>,
    ) -> Result<Vec<Binding>, SparqlError> {
        match pattern {
            GraphPattern::Bgp(tps) => self.eval_bgp(tps, input),
            GraphPattern::Join(a, b) => {
                let left = self.eval_pattern(a, input)?;
                self.eval_pattern(b, left)
            }
            GraphPattern::Optional(a, b) => {
                let left = self.eval_pattern(a, input)?;
                let mut out = Vec::with_capacity(left.len());
                for binding in left {
                    let extended = self.eval_pattern(b, vec![binding.clone()])?;
                    if extended.is_empty() {
                        out.push(binding);
                    } else {
                        out.extend(extended);
                    }
                }
                Ok(out)
            }
            GraphPattern::Union(a, b) => {
                let mut left = self.eval_pattern(a, input.clone())?;
                let right = self.eval_pattern(b, input)?;
                left.extend(right);
                Ok(left)
            }
            GraphPattern::Filter(inner, expr) => {
                let bindings = self.eval_pattern(inner, input)?;
                let mut out = Vec::with_capacity(bindings.len());
                for b in bindings {
                    if eval_expression(expr, &b)?
                        .map(term_truthiness)
                        .unwrap_or(false)
                    {
                        out.push(b);
                    }
                }
                Ok(out)
            }
        }
    }

    fn eval_bgp(
        &self,
        patterns: &[TriplePatternAst],
        input: Vec<Binding>,
    ) -> Result<Vec<Binding>, SparqlError> {
        if patterns.is_empty() {
            return Ok(input);
        }
        // Join ordering: text-search patterns first (they are generative and
        // highly selective), then by number of bound positions descending.
        let mut ordered: Vec<&TriplePatternAst> = patterns.iter().collect();
        ordered.sort_by_key(|tp| {
            if is_text_search_pattern(tp) {
                0
            } else {
                3usize.saturating_sub(tp.bound_positions())
            }
        });

        let mut current = input;
        for tp in ordered {
            let mut next = Vec::new();
            for binding in &current {
                self.extend_binding(tp, binding, &mut next)?;
            }
            current = next;
            if current.is_empty() {
                break;
            }
        }
        Ok(current)
    }

    /// Extend one binding with all matches of one triple pattern.
    fn extend_binding(
        &self,
        tp: &TriplePatternAst,
        binding: &Binding,
        out: &mut Vec<Binding>,
    ) -> Result<(), SparqlError> {
        if is_text_search_pattern(tp) {
            return self.extend_with_text_search(tp, binding, out);
        }

        let resolve = |vot: &VarOrTerm| -> Option<Term> {
            match vot {
                VarOrTerm::Term(t) => Some(t.clone()),
                VarOrTerm::Var(v) => binding.get(v).cloned(),
            }
        };

        let pattern = TriplePattern {
            subject: resolve(&tp.subject),
            predicate: resolve(&tp.predicate),
            object: resolve(&tp.object),
        };

        for matched in self.store.matching(&pattern) {
            let mut extended = binding.clone();
            let mut compatible = true;
            for (vot, term) in [
                (&tp.subject, &matched.subject),
                (&tp.predicate, &matched.predicate),
                (&tp.object, &matched.object),
            ] {
                if let VarOrTerm::Var(v) = vot {
                    match extended.get(v) {
                        Some(existing) if existing != term => {
                            compatible = false;
                            break;
                        }
                        _ => extended.set(v.clone(), term.clone()),
                    }
                }
            }
            if compatible {
                out.push(extended);
            }
        }
        Ok(())
    }

    /// Evaluate a `?lit <bif:contains> "words"` pattern: bind the subject to
    /// every string literal containing any of the query words.
    fn extend_with_text_search(
        &self,
        tp: &TriplePatternAst,
        binding: &Binding,
        out: &mut Vec<Binding>,
    ) -> Result<(), SparqlError> {
        let query_text = match &tp.object {
            VarOrTerm::Term(Term::Literal(lit)) => lit.lexical.clone(),
            VarOrTerm::Var(v) => match binding.get(v) {
                Some(Term::Literal(lit)) => lit.lexical.clone(),
                _ => {
                    return Err(SparqlError::Evaluation(
                        "text-search pattern requires a literal query string".into(),
                    ))
                }
            },
            _ => {
                return Err(SparqlError::Evaluation(
                    "text-search pattern requires a literal query string".into(),
                ))
            }
        };
        let words = parse_text_query(&query_text);
        let word_refs: Vec<&str> = words.iter().map(String::as_str).collect();
        let matches = self
            .store
            .text_index()
            .search_any(&word_refs, self.text_cap);

        match &tp.subject {
            VarOrTerm::Var(var) => {
                for m in matches {
                    let Some(term) = self.store.term_of(m.literal) else {
                        continue;
                    };
                    match binding.get(var) {
                        Some(existing) if existing != term => continue,
                        _ => {}
                    }
                    let mut extended = binding.clone();
                    extended.set(var.clone(), term.clone());
                    out.push(extended);
                }
            }
            VarOrTerm::Term(term) => {
                // Bound subject: keep the binding iff that literal matches.
                let keeps = matches
                    .iter()
                    .any(|m| self.store.term_of(m.literal) == Some(term));
                if keeps {
                    out.push(binding.clone());
                }
            }
        }
        Ok(())
    }
}

/// True if a triple pattern's predicate is one of the full-text extension
/// predicates.
pub fn is_text_search_pattern(tp: &TriplePatternAst) -> bool {
    match &tp.predicate {
        VarOrTerm::Term(Term::Iri(iri)) => TEXT_SEARCH_PREDICATES.contains(&iri.as_str()),
        _ => false,
    }
}

/// Extract search words from a Virtuoso-style containment expression, e.g.
/// `'danish' OR 'straits'` → `["danish", "straits"]`.
pub fn parse_text_query(text: &str) -> Vec<String> {
    tokenize(text)
        .into_iter()
        .filter(|w| w != "or" && w != "and" && w != "not")
        .collect()
}

/// SPARQL effective boolean value of a term.
fn term_truthiness(term: Term) -> bool {
    match term {
        Term::Literal(lit) => {
            if lit.is_boolean() {
                lit.lexical == "true" || lit.lexical == "1"
            } else if lit.is_numeric() {
                lit.lexical
                    .parse::<f64>()
                    .map(|v| v != 0.0)
                    .unwrap_or(false)
            } else {
                !lit.lexical.is_empty()
            }
        }
        _ => true,
    }
}

/// Evaluate a filter expression under a binding.  `Ok(None)` means the
/// expression is an error for this row (e.g. unbound variable), which SPARQL
/// treats as false at the FILTER level.
fn eval_expression(expr: &Expression, binding: &Binding) -> Result<Option<Term>, SparqlError> {
    let boolean = |b: bool| Some(Term::boolean(b));
    match expr {
        Expression::Var(v) => Ok(binding.get(v).cloned()),
        Expression::Constant(t) => Ok(Some(t.clone())),
        Expression::Bound(v) => Ok(boolean(binding.is_bound(v))),
        Expression::Not(inner) => {
            let value = eval_expression(inner, binding)?;
            Ok(boolean(!value.map(term_truthiness).unwrap_or(false)))
        }
        Expression::And(a, b) => {
            let left = eval_expression(a, binding)?
                .map(term_truthiness)
                .unwrap_or(false);
            if !left {
                return Ok(boolean(false));
            }
            let right = eval_expression(b, binding)?
                .map(term_truthiness)
                .unwrap_or(false);
            Ok(boolean(right))
        }
        Expression::Or(a, b) => {
            let left = eval_expression(a, binding)?
                .map(term_truthiness)
                .unwrap_or(false);
            if left {
                return Ok(boolean(true));
            }
            let right = eval_expression(b, binding)?
                .map(term_truthiness)
                .unwrap_or(false);
            Ok(boolean(right))
        }
        Expression::Eq(a, b) => compare(a, b, binding, |o| o == std::cmp::Ordering::Equal),
        Expression::Neq(a, b) => compare(a, b, binding, |o| o != std::cmp::Ordering::Equal),
        Expression::Lt(a, b) => compare(a, b, binding, |o| o == std::cmp::Ordering::Less),
        Expression::Gt(a, b) => compare(a, b, binding, |o| o == std::cmp::Ordering::Greater),
        Expression::Le(a, b) => compare(a, b, binding, |o| o != std::cmp::Ordering::Greater),
        Expression::Ge(a, b) => compare(a, b, binding, |o| o != std::cmp::Ordering::Less),
        Expression::Contains(a, b) => {
            let (Some(ta), Some(tb)) = (eval_expression(a, binding)?, eval_expression(b, binding)?)
            else {
                return Ok(None);
            };
            let hay = term_text(&ta).to_lowercase();
            let needle = term_text(&tb).to_lowercase();
            Ok(boolean(hay.contains(&needle)))
        }
        Expression::Regex(a, b) => {
            let (Some(ta), Some(tb)) = (eval_expression(a, binding)?, eval_expression(b, binding)?)
            else {
                return Ok(None);
            };
            let hay = term_text(&ta).to_lowercase();
            let pattern = term_text(&tb).to_lowercase();
            Ok(boolean(regex_lite(&hay, &pattern)))
        }
        Expression::Lang(inner) => {
            let Some(t) = eval_expression(inner, binding)? else {
                return Ok(None);
            };
            let lang = t
                .as_literal()
                .and_then(|l| l.language.clone())
                .unwrap_or_default();
            Ok(Some(Term::literal_str(lang)))
        }
        Expression::Str(inner) => {
            let Some(t) = eval_expression(inner, binding)? else {
                return Ok(None);
            };
            Ok(Some(Term::literal_str(term_text(&t).to_string())))
        }
    }
}

fn compare(
    a: &Expression,
    b: &Expression,
    binding: &Binding,
    accept: impl Fn(std::cmp::Ordering) -> bool,
) -> Result<Option<Term>, SparqlError> {
    let (Some(ta), Some(tb)) = (eval_expression(a, binding)?, eval_expression(b, binding)?) else {
        return Ok(None);
    };
    let ordering = term_compare(&ta, &tb);
    Ok(Some(Term::boolean(accept(ordering))))
}

/// Compare two terms: numerically when both parse as numbers, otherwise by
/// their textual form.
fn term_compare(a: &Term, b: &Term) -> std::cmp::Ordering {
    let num =
        |t: &Term| -> Option<f64> { t.as_literal().and_then(|l| l.lexical.parse::<f64>().ok()) };
    if let (Some(x), Some(y)) = (num(a), num(b)) {
        return x.partial_cmp(&y).unwrap_or(std::cmp::Ordering::Equal);
    }
    term_text(a).cmp(term_text(b))
}

/// The comparable / searchable text of a term.
fn term_text(t: &Term) -> &str {
    match t {
        Term::Iri(iri) => iri,
        Term::Blank(b) => b,
        Term::Literal(l) => &l.lexical,
    }
}

/// A tiny regex evaluator supporting the anchors `^`/`$` and plain substring
/// patterns — enough for the benchmark queries, without a regex dependency.
fn regex_lite(text: &str, pattern: &str) -> bool {
    let starts = pattern.starts_with('^');
    let ends = pattern.ends_with('$');
    let core = pattern.trim_start_matches('^').trim_end_matches('$');
    match (starts, ends) {
        (true, true) => text == core,
        (true, false) => text.starts_with(core),
        (false, true) => text.ends_with(core),
        (false, false) => text.contains(core),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgqan_rdf::{vocab, Triple};

    /// The DBpedia fragment of the paper's running example 𝑞_E plus a few
    /// distractors.
    fn running_example_store() -> Store {
        let mut store = Store::new();
        let sea = Term::iri("http://dbpedia.org/resource/Baltic_Sea");
        let north_sea = Term::iri("http://dbpedia.org/resource/North_Sea");
        let straits = Term::iri("http://dbpedia.org/resource/Danish_straits");
        let kali = Term::iri("http://dbpedia.org/resource/Kaliningrad");
        let yantar = Term::iri("http://dbpedia.org/resource/Yantar,_Kaliningrad");
        let label = Term::iri(vocab::RDFS_LABEL);

        store.insert_all([
            Triple::new(sea.clone(), label.clone(), Term::literal_str("Baltic Sea")),
            Triple::new(
                north_sea.clone(),
                label.clone(),
                Term::literal_str("North Sea"),
            ),
            Triple::new(
                straits.clone(),
                label.clone(),
                Term::literal_str("Danish Straits"),
            ),
            Triple::new(
                kali.clone(),
                label.clone(),
                Term::literal_str("Kaliningrad"),
            ),
            Triple::new(
                yantar.clone(),
                label.clone(),
                Term::literal_str("Yantar, Kaliningrad"),
            ),
            Triple::new(
                sea.clone(),
                Term::iri("http://dbpedia.org/property/outflow"),
                straits.clone(),
            ),
            Triple::new(
                sea.clone(),
                Term::iri("http://dbpedia.org/ontology/nearestCity"),
                kali.clone(),
            ),
            Triple::new(
                north_sea.clone(),
                Term::iri("http://dbpedia.org/property/outflow"),
                Term::iri("http://dbpedia.org/resource/English_Channel"),
            ),
            Triple::new(
                sea.clone(),
                Term::iri(vocab::RDF_TYPE),
                Term::iri("http://dbpedia.org/ontology/Sea"),
            ),
            Triple::new(
                kali.clone(),
                Term::iri("http://dbpedia.org/ontology/populationTotal"),
                Term::integer(431000),
            ),
            Triple::new(
                kali,
                Term::iri(vocab::RDF_TYPE),
                Term::iri("http://dbpedia.org/ontology/City"),
            ),
        ]);
        store
    }

    #[test]
    fn figure1_query_returns_baltic_sea() {
        let store = running_example_store();
        let results = execute_query(
            &store,
            r#"PREFIX dbv: <http://dbpedia.org/resource/>
               SELECT ?sea WHERE {
                 ?sea <http://dbpedia.org/property/outflow> dbv:Danish_straits .
                 ?sea <http://dbpedia.org/ontology/nearestCity> dbv:Kaliningrad . }"#,
        )
        .unwrap();
        let rows = results.rows();
        assert_eq!(rows.len(), 1);
        assert_eq!(
            rows[0].get("sea"),
            Some(&Term::iri("http://dbpedia.org/resource/Baltic_Sea"))
        );
    }

    #[test]
    fn select_star_returns_all_variables() {
        let store = running_example_store();
        let results = execute_query(
            &store,
            "SELECT * WHERE { ?s <http://dbpedia.org/property/outflow> ?o . }",
        )
        .unwrap();
        assert_eq!(results.rows().len(), 2);
        assert!(results.rows()[0].is_bound("s"));
        assert!(results.rows()[0].is_bound("o"));
    }

    #[test]
    fn ask_query_answers_presence() {
        let store = running_example_store();
        let yes = execute_query(
            &store,
            "ASK { <http://dbpedia.org/resource/Baltic_Sea> a <http://dbpedia.org/ontology/Sea> }",
        )
        .unwrap();
        assert_eq!(yes.as_boolean(), Some(true));
        let no = execute_query(
            &store,
            "ASK { <http://dbpedia.org/resource/Baltic_Sea> a <http://dbpedia.org/ontology/River> }",
        )
        .unwrap();
        assert_eq!(no.as_boolean(), Some(false));
    }

    #[test]
    fn optional_keeps_rows_without_match() {
        let store = running_example_store();
        // North Sea has an outflow but no rdf:type in the store.
        let results = execute_query(
            &store,
            "SELECT ?sea ?type WHERE { ?sea <http://dbpedia.org/property/outflow> ?x . \
             OPTIONAL { ?sea a ?type . } }",
        )
        .unwrap();
        let rs = results.as_solutions().unwrap();
        assert_eq!(rs.len(), 2);
        let with_type = rs.rows().iter().filter(|b| b.is_bound("type")).count();
        let without_type = rs.rows().iter().filter(|b| !b.is_bound("type")).count();
        assert_eq!(with_type, 1);
        assert_eq!(without_type, 1);
    }

    #[test]
    fn distinct_and_limit_and_offset() {
        let store = running_example_store();
        let all = execute_query(&store, "SELECT ?p WHERE { ?s ?p ?o . }").unwrap();
        let distinct = execute_query(&store, "SELECT DISTINCT ?p WHERE { ?s ?p ?o . }").unwrap();
        assert!(distinct.rows().len() < all.rows().len());
        assert_eq!(distinct.rows().len(), 5);

        let limited = execute_query(&store, "SELECT ?p WHERE { ?s ?p ?o . } LIMIT 3").unwrap();
        assert_eq!(limited.rows().len(), 3);

        let offset = execute_query(
            &store,
            "SELECT DISTINCT ?p WHERE { ?s ?p ?o . } LIMIT 10 OFFSET 4",
        )
        .unwrap();
        assert_eq!(offset.rows().len(), 1);
    }

    #[test]
    fn bif_contains_finds_potential_relevant_vertices() {
        let store = running_example_store();
        // The paper's potentialRelevantVertices query for "Danish Straits".
        let results = execute_query(
            &store,
            r#"SELECT DISTINCT ?v ?d WHERE {
                 ?v ?p ?d .
                 ?d <bif:contains> "'danish' OR 'straits'" . } LIMIT 400"#,
        )
        .unwrap();
        let rs = results.as_solutions().unwrap();
        assert_eq!(rs.len(), 1);
        assert_eq!(
            rs.rows()[0].get("v"),
            Some(&Term::iri("http://dbpedia.org/resource/Danish_straits"))
        );

        // "Kaliningrad" must return both Kaliningrad and Yantar,_Kaliningrad.
        let results = execute_query(
            &store,
            r#"SELECT DISTINCT ?v WHERE {
                 ?v ?p ?d .
                 ?d <bif:contains> "'kaliningrad'" . } LIMIT 400"#,
        )
        .unwrap();
        assert_eq!(results.rows().len(), 2);
    }

    #[test]
    fn stardog_dialect_predicate_also_works() {
        let store = running_example_store();
        let results = execute_query(
            &store,
            r#"SELECT ?v WHERE { ?v ?p ?d . ?d <tag:stardog:api:property:textMatch> "baltic" . }"#,
        )
        .unwrap();
        assert_eq!(results.rows().len(), 1);
    }

    #[test]
    fn filter_numeric_comparison() {
        let store = running_example_store();
        let results = execute_query(
            &store,
            "SELECT ?city WHERE { ?city <http://dbpedia.org/ontology/populationTotal> ?pop . \
             FILTER (?pop > 100000) }",
        )
        .unwrap();
        assert_eq!(results.rows().len(), 1);
        let none = execute_query(
            &store,
            "SELECT ?city WHERE { ?city <http://dbpedia.org/ontology/populationTotal> ?pop . \
             FILTER (?pop > 1000000) }",
        )
        .unwrap();
        assert!(none.rows().is_empty());
    }

    #[test]
    fn filter_contains_and_regex_and_bound() {
        let store = running_example_store();
        let results = execute_query(
            &store,
            r#"SELECT ?s WHERE { ?s <http://www.w3.org/2000/01/rdf-schema#label> ?l .
                FILTER (CONTAINS(?l, "sea")) }"#,
        )
        .unwrap();
        assert_eq!(results.rows().len(), 2);

        let anchored = execute_query(
            &store,
            r#"SELECT ?s WHERE { ?s <http://www.w3.org/2000/01/rdf-schema#label> ?l .
                FILTER (REGEX(?l, "^baltic")) }"#,
        )
        .unwrap();
        assert_eq!(anchored.rows().len(), 1);

        let bound = execute_query(
            &store,
            r#"SELECT ?s ?t WHERE { ?s <http://www.w3.org/2000/01/rdf-schema#label> ?l .
                OPTIONAL { ?s a ?t . } FILTER (BOUND(?t)) }"#,
        )
        .unwrap();
        assert_eq!(bound.rows().len(), 2);
    }

    #[test]
    fn union_combines_branches() {
        let store = running_example_store();
        let results = execute_query(
            &store,
            "SELECT ?x WHERE { { ?x <http://dbpedia.org/property/outflow> ?y . } UNION \
             { ?x <http://dbpedia.org/ontology/nearestCity> ?y . } }",
        )
        .unwrap();
        assert_eq!(results.rows().len(), 3);
    }

    #[test]
    fn join_across_shared_variable() {
        let store = running_example_store();
        // Which class does the thing nearest to Kaliningrad belong to?
        let results = execute_query(
            &store,
            "SELECT ?type WHERE { ?sea <http://dbpedia.org/ontology/nearestCity> \
             <http://dbpedia.org/resource/Kaliningrad> . ?sea a ?type . }",
        )
        .unwrap();
        assert_eq!(results.rows().len(), 1);
        assert_eq!(
            results.rows()[0].get("type"),
            Some(&Term::iri("http://dbpedia.org/ontology/Sea"))
        );
    }

    #[test]
    fn empty_pattern_select_returns_single_empty_row_for_ask() {
        let store = running_example_store();
        let results = execute_query(&store, "ASK { }").unwrap();
        assert_eq!(results.as_boolean(), Some(true));
    }

    #[test]
    fn unbound_filter_variable_is_false_not_error() {
        let store = running_example_store();
        let results = execute_query(
            &store,
            "SELECT ?s WHERE { ?s <http://dbpedia.org/property/outflow> ?o . FILTER (?missing > 3) }",
        )
        .unwrap();
        assert!(results.rows().is_empty());
    }

    #[test]
    fn text_query_parsing_strips_connectives_and_quotes() {
        assert_eq!(
            parse_text_query("'danish' OR 'straits'"),
            vec!["danish", "straits"]
        );
        assert_eq!(parse_text_query("Jim AND Gray"), vec!["jim", "gray"]);
        assert_eq!(parse_text_query(""), Vec::<String>::new());
    }

    #[test]
    fn variable_predicate_patterns_work() {
        let store = running_example_store();
        let results = execute_query(
            &store,
            "SELECT ?p ?o WHERE { <http://dbpedia.org/resource/Baltic_Sea> ?p ?o . }",
        )
        .unwrap();
        assert_eq!(results.rows().len(), 4);
    }
}
