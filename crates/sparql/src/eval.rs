//! Query evaluation over the [`kgqan_rdf::Store`].
//!
//! # The dictionary-encoded pipeline
//!
//! The store is dictionary-encoded: every [`Term`] is interned once into a
//! fixed-width [`TermId`] and the triple indices operate purely on ids.  The
//! evaluator stays in id space end-to-end:
//!
//! 1. **Plan** — [`crate::plan::Planner`] numbers the variables into a dense
//!    `VarRegistry`, resolves each triple pattern's constant terms in the
//!    dictionary once (an absent constant proves the pattern matches
//!    nothing), and chooses a cardinality-ordered join order with `FILTER`
//!    pushdown from the store's statistics.
//! 2. **Join** — a solution row is a `Vec<Option<TermId>>` indexed by
//!    variable number.  The planned operators stream rows through
//!    nested-index-loop joins driving the store's iterator-based
//!    [`Store::scan`]; join compatibility is a `u32` comparison, and
//!    extending a row is a flat-vector copy.  `OPTIONAL` is a left outer
//!    join, `UNION` a concatenation — both over id rows, both lazy, so
//!    `LIMIT` stops the scans as soon as enough rows exist.
//! 3. **Decode** — terms are materialised in exactly two places: `FILTER`
//!    expressions, which need lexical values and decode the variables they
//!    reference on demand, and final projection, which decodes only the rows
//!    that survive `DISTINCT`/`OFFSET`/`LIMIT` (all applied while the rows
//!    are still ids) into term-level [`Binding`]s for [`crate::results`].
//!
//! The full-text predicates (`bif:contains`, Stardog `textMatch`, Jena
//! `text:query`) bind their subject to the string literals matched by the
//! store's built-in text index — which already yields `TermId`s, so the text
//! path never decodes at all.
//!
//! This module keeps a second, deliberately simple evaluator:
//! [`execute_naive`] materialises every intermediate row set and evaluates
//! basic graph patterns in the exact order the AST lists them.  It is the
//! reference implementation the planner is property-tested against.

use kgqan_rdf::text::tokenize;
use kgqan_rdf::{EncodedTriplePattern, Store, Term, TermId};

use crate::ast::{Expression, GraphPattern, Query, QueryForm, TriplePatternAst, VarOrTerm};
use crate::error::SparqlError;
use crate::parser::parse_query;
use crate::results::{Binding, QueryResults, ResultSet};

/// The IRIs accepted as full-text search predicates.  The first is Virtuoso's
/// (used verbatim in the paper's `potentialRelevantVertices` query); the
/// others are the equivalents the paper mentions for Stardog and Jena.
pub const TEXT_SEARCH_PREDICATES: &[&str] = &[
    "bif:contains",
    "http://www.openlinksw.com/schemas/bif#contains",
    "tag:stardog:api:property:textMatch",
    "stardog:textMatch",
    "http://jena.apache.org/text#query",
    "text:query",
];

/// Maximum number of literals a single text-search pattern may bind when the
/// query carries no LIMIT — a safety valve mirroring the engines' own caps.
const DEFAULT_TEXT_SEARCH_CAP: usize = 10_000;

/// Evaluate a parsed [`Query`] against a store through the cost-based
/// planner and streaming executor (see [`crate::plan`]).
pub fn execute(store: &Store, query: &Query) -> Result<QueryResults, SparqlError> {
    Evaluator::new(store).run(query)
}

/// Parse and evaluate a SPARQL string against a store.
pub fn execute_query(store: &Store, query: &str) -> Result<QueryResults, SparqlError> {
    let parsed = parse_query(query)?;
    execute(store, &parsed)
}

/// Evaluate a parsed [`Query`] with the naive reference evaluator: triple
/// patterns are joined in the exact order the AST lists them, every
/// intermediate row set is fully materialised, and `DISTINCT`/`OFFSET`/
/// `LIMIT` truncate the final rows post-hoc.
///
/// This is **not** the production path — [`execute`] plans and streams — but
/// the semantics oracle the planner is property-tested against, and the
/// baseline the `sparql_planner` bench measures the planner's win over.
/// The two paths return the same row multiset for every query; row *order*
/// (and therefore which rows a bare `LIMIT`/`OFFSET` page selects) may
/// differ, as SPARQL permits without `ORDER BY`.  The planned path may also
/// skip evaluation errors the naive order would hit (and vice versa) when a
/// reordered step proves the result empty before the erroring step runs.
pub fn execute_naive(store: &Store, query: &Query) -> Result<QueryResults, SparqlError> {
    let run = QueryRun::new(store, query);
    let compiled = run.compile_pattern(&query.pattern);
    let rows = run.eval_pattern(&compiled, vec![vec![None; run.vars.len()]])?;

    match &query.form {
        QueryForm::Ask => Ok(QueryResults::Boolean(!rows.is_empty())),
        QueryForm::Select {
            variables,
            distinct,
        } => {
            let projected: Vec<String> = if variables.is_empty() {
                query.pattern.variables()
            } else {
                variables.clone()
            };
            // Project, deduplicate and page while the rows are still
            // ids; only the surviving rows are decoded to terms.
            let slots: Vec<Option<usize>> = projected.iter().map(|v| run.vars.id_of(v)).collect();
            let mut id_rows: Vec<IdRow> = rows
                .into_iter()
                .map(|row| slots.iter().map(|slot| slot.and_then(|i| row[i])).collect())
                .collect();
            if *distinct {
                let mut seen = std::collections::HashSet::new();
                id_rows.retain(|row| seen.insert(row.clone()));
            }
            if let Some(offset) = query.offset {
                id_rows.drain(..offset.min(id_rows.len()));
            }
            if let Some(limit) = query.limit {
                id_rows.truncate(limit);
            }
            let rows: Vec<Binding> = id_rows
                .into_iter()
                .map(|row| decode_row(run.store, &projected, &row))
                .collect();
            Ok(QueryResults::Solutions(ResultSet::new(projected, rows)))
        }
    }
}

/// A dense numbering of the variables of one query.
///
/// Id-level solution rows are flat vectors indexed by variable number, so
/// looking a variable up during a join is an array access instead of a
/// string-keyed map probe.
#[derive(Debug, Default, Clone)]
pub(crate) struct VarRegistry {
    names: Vec<String>,
}

impl VarRegistry {
    /// Number every variable appearing in the query's graph pattern, in
    /// first-seen order.
    pub(crate) fn from_pattern(pattern: &GraphPattern) -> Self {
        VarRegistry {
            names: pattern.variables(),
        }
    }

    pub(crate) fn id_of(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }

    pub(crate) fn len(&self) -> usize {
        self.names.len()
    }
}

/// An id-level solution row: one `Option<TermId>` slot per registered
/// variable.  Cloning is a flat memcpy — the unit of work of the join loops.
pub(crate) type IdRow = Vec<Option<TermId>>;

/// One position of a compiled triple pattern: a dictionary id for constant
/// terms, a variable slot otherwise.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Slot {
    Const(TermId),
    Var(usize),
}

/// A triple pattern with its constants resolved to dictionary ids.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CompiledTriplePattern {
    pub(crate) subject: Slot,
    pub(crate) predicate: Slot,
    pub(crate) object: Slot,
}

/// Resolve the constants of a triple pattern against the store's dictionary
/// under a variable numbering.  `None` means a constant is not interned, so
/// the pattern can never match in this store.
pub(crate) fn compile_triple_pattern(
    store: &Store,
    vars: &VarRegistry,
    tp: &TriplePatternAst,
) -> Option<CompiledTriplePattern> {
    let slot = |vot: &VarOrTerm| -> Option<Slot> {
        match vot {
            VarOrTerm::Term(t) => store.id_of(t).map(Slot::Const),
            VarOrTerm::Var(v) => Some(Slot::Var(
                vars.id_of(v).expect("pattern variables are all registered"),
            )),
        }
    };
    Some(CompiledTriplePattern {
        subject: slot(&tp.subject)?,
        predicate: slot(&tp.predicate)?,
        object: slot(&tp.object)?,
    })
}

/// Decode a projected id row into a term-level [`Binding`] — the single
/// point where query evaluation leaves id space.
pub(crate) fn decode_row(store: &Store, variables: &[String], row: &IdRow) -> Binding {
    let mut binding = Binding::new();
    for (name, id) in variables.iter().zip(row) {
        if let Some(id) = id {
            if let Some(term) = store.term_of(*id) {
                binding.set(name.clone(), term.clone());
            }
        }
    }
    binding
}

/// The text-search query words of a `?lit <bif:contains> …` pattern under a
/// row: a constant literal object is used as-is, a variable object must be
/// bound to a literal.
pub(crate) fn text_query_words(
    store: &Store,
    vars: &VarRegistry,
    tp: &TriplePatternAst,
    row: &IdRow,
) -> Result<Vec<String>, SparqlError> {
    let query_text = match &tp.object {
        VarOrTerm::Term(Term::Literal(lit)) => lit.lexical.clone(),
        VarOrTerm::Var(v) => {
            let bound = vars
                .id_of(v)
                .and_then(|slot| row[slot])
                .and_then(|id| store.term_of(id));
            match bound {
                Some(Term::Literal(lit)) => lit.lexical.clone(),
                _ => {
                    return Err(SparqlError::Evaluation(
                        "text-search pattern requires a literal query string".into(),
                    ))
                }
            }
        }
        _ => {
            return Err(SparqlError::Evaluation(
                "text-search pattern requires a literal query string".into(),
            ))
        }
    };
    Ok(parse_text_query(&query_text))
}

/// One join step of a compiled basic graph pattern.
#[derive(Debug, Clone, Copy)]
enum CompiledStep<'q> {
    /// An index scan of an id-compiled pattern.
    Scan(CompiledTriplePattern),
    /// A full-text probe; kept as AST because the query string may come
    /// from a variable binding and is resolved per row.
    TextSearch(&'q TriplePatternAst),
    /// A constant term of the pattern is absent from the dictionary, so the
    /// pattern provably matches nothing in this store.
    NeverMatches,
}

/// A graph pattern compiled against the store: variables numbered, constant
/// terms resolved to dictionary ids and basic graph patterns join-ordered.
///
/// Built **once** per query run, so per-row re-evaluation (every left row of
/// an `OPTIONAL`, for instance) re-uses the resolved ids instead of
/// re-probing the dictionary and re-sorting the join order.
#[derive(Debug)]
enum CompiledPattern<'q> {
    Bgp(Vec<CompiledStep<'q>>),
    Join(Box<CompiledPattern<'q>>, Box<CompiledPattern<'q>>),
    Optional(Box<CompiledPattern<'q>>, Box<CompiledPattern<'q>>),
    Union(Box<CompiledPattern<'q>>, Box<CompiledPattern<'q>>),
    Filter(Box<CompiledPattern<'q>>, &'q Expression),
    /// A `SERVICE <kg:name>` group.  The naive evaluator has no resolver for
    /// other KGs, so this compiles to a deferred error (raised only if the
    /// group is actually evaluated): federated queries go through the
    /// planner (`Planner::with_services`).
    Service(&'q str),
}

/// A query evaluator bound to a store.
pub struct Evaluator<'a> {
    store: &'a Store,
}

/// The per-query evaluation state: the store, the variable numbering and the
/// effective text-search fan-out cap.
struct QueryRun<'a> {
    store: &'a Store,
    vars: VarRegistry,
    text_cap: usize,
}

impl<'a> Evaluator<'a> {
    /// Create an evaluator over `store`.
    pub fn new(store: &'a Store) -> Self {
        Evaluator { store }
    }

    /// Run a query to completion: compile it into a [`crate::plan::PhysicalPlan`]
    /// (cardinality-ordered joins, filter pushdown, streaming operators with
    /// `LIMIT` early termination) and execute it.
    pub fn run(&self, query: &Query) -> Result<QueryResults, SparqlError> {
        Ok(crate::plan::Planner::new(self.store)
            .plan(query)
            .execute()?
            .results)
    }
}

/// The text-search fan-out cap of one query: LIMIT + OFFSET, mirroring the
/// `LIMIT maxVR` clause of `potentialRelevantVertices`.  OFFSET must count
/// too: `LIMIT 10 OFFSET 4` consumes 14 candidates before truncation, so
/// capping at the bare LIMIT would starve the tail rows.  The default cap
/// stays a ceiling either way.
pub(crate) fn effective_text_cap(query: &Query) -> usize {
    match query.limit {
        Some(limit) => limit
            .saturating_add(query.offset.unwrap_or(0))
            .min(DEFAULT_TEXT_SEARCH_CAP),
        None => DEFAULT_TEXT_SEARCH_CAP,
    }
}

impl<'a> QueryRun<'a> {
    fn new(store: &'a Store, query: &Query) -> Self {
        QueryRun {
            store,
            vars: VarRegistry::from_pattern(&query.pattern),
            text_cap: effective_text_cap(query),
        }
    }
}

impl QueryRun<'_> {
    /// Compile a graph pattern for the naive evaluator: resolve every
    /// constant term to its dictionary id, exactly once per query run,
    /// keeping each BGP's triple patterns in AST order.
    fn compile_pattern<'q>(&self, pattern: &'q GraphPattern) -> CompiledPattern<'q> {
        match pattern {
            GraphPattern::Bgp(tps) => CompiledPattern::Bgp(
                tps.iter()
                    .map(|tp| {
                        if is_text_search_pattern(tp) {
                            CompiledStep::TextSearch(tp)
                        } else {
                            match compile_triple_pattern(self.store, &self.vars, tp) {
                                Some(compiled) => CompiledStep::Scan(compiled),
                                None => CompiledStep::NeverMatches,
                            }
                        }
                    })
                    .collect(),
            ),
            GraphPattern::Join(a, b) => CompiledPattern::Join(
                Box::new(self.compile_pattern(a)),
                Box::new(self.compile_pattern(b)),
            ),
            GraphPattern::Optional(a, b) => CompiledPattern::Optional(
                Box::new(self.compile_pattern(a)),
                Box::new(self.compile_pattern(b)),
            ),
            GraphPattern::Union(a, b) => CompiledPattern::Union(
                Box::new(self.compile_pattern(a)),
                Box::new(self.compile_pattern(b)),
            ),
            GraphPattern::Filter(inner, expr) => {
                CompiledPattern::Filter(Box::new(self.compile_pattern(inner)), expr)
            }
            GraphPattern::Service { kg, .. } => CompiledPattern::Service(kg),
        }
    }

    fn eval_pattern(
        &self,
        pattern: &CompiledPattern<'_>,
        input: Vec<IdRow>,
    ) -> Result<Vec<IdRow>, SparqlError> {
        match pattern {
            CompiledPattern::Bgp(steps) => self.eval_bgp(steps, input),
            CompiledPattern::Join(a, b) => {
                let left = self.eval_pattern(a, input)?;
                self.eval_pattern(b, left)
            }
            CompiledPattern::Optional(a, b) => {
                let left = self.eval_pattern(a, input)?;
                let mut out = Vec::with_capacity(left.len());
                for row in left {
                    let extended = self.eval_pattern(b, vec![row.clone()])?;
                    if extended.is_empty() {
                        out.push(row);
                    } else {
                        out.extend(extended);
                    }
                }
                Ok(out)
            }
            CompiledPattern::Union(a, b) => {
                let mut left = self.eval_pattern(a, input.clone())?;
                let right = self.eval_pattern(b, input)?;
                left.extend(right);
                Ok(left)
            }
            CompiledPattern::Filter(inner, expr) => {
                let rows = self.eval_pattern(inner, input)?;
                let mut out = Vec::with_capacity(rows.len());
                for row in rows {
                    if eval_expression(self.store, &self.vars, expr, &row)?
                        .map(term_truthiness)
                        .unwrap_or(false)
                    {
                        out.push(row);
                    }
                }
                Ok(out)
            }
            CompiledPattern::Service(kg) => Err(SparqlError::Service {
                kg: (*kg).to_string(),
                message: "the naive evaluator cannot execute SERVICE groups; \
                          plan the query with Planner::with_services"
                    .to_string(),
            }),
        }
    }

    fn eval_bgp(
        &self,
        steps: &[CompiledStep<'_>],
        input: Vec<IdRow>,
    ) -> Result<Vec<IdRow>, SparqlError> {
        if steps.is_empty() {
            return Ok(input);
        }
        let mut current = input;
        for step in steps {
            let mut next = Vec::new();
            match step {
                CompiledStep::Scan(tp) => {
                    for row in &current {
                        self.extend_row(tp, row, &mut next);
                    }
                }
                CompiledStep::TextSearch(tp) => {
                    for row in &current {
                        self.extend_with_text_search(tp, row, &mut next)?;
                    }
                }
                // A constant absent from the dictionary matches nothing:
                // `next` stays empty.
                CompiledStep::NeverMatches => {}
            }
            current = next;
            if current.is_empty() {
                break;
            }
        }
        Ok(current)
    }

    /// Extend one id row with all matches of one compiled triple pattern —
    /// the innermost join loop.  All comparisons are `TermId` equalities and
    /// no term is decoded.
    fn extend_row(&self, tp: &CompiledTriplePattern, row: &IdRow, out: &mut Vec<IdRow>) {
        let resolve = |slot: Slot| -> Option<TermId> {
            match slot {
                Slot::Const(id) => Some(id),
                Slot::Var(v) => row[v],
            }
        };
        let pattern = EncodedTriplePattern::new(
            resolve(tp.subject),
            resolve(tp.predicate),
            resolve(tp.object),
        );
        for matched in self.store.scan(pattern) {
            let mut extended = row.clone();
            let mut compatible = true;
            for (slot, id) in [
                (tp.subject, matched.subject),
                (tp.predicate, matched.predicate),
                (tp.object, matched.object),
            ] {
                if let Slot::Var(v) = slot {
                    match extended[v] {
                        Some(existing) if existing != id => {
                            // A variable repeated within the pattern matched
                            // two different ids.
                            compatible = false;
                            break;
                        }
                        _ => extended[v] = Some(id),
                    }
                }
            }
            if compatible {
                out.push(extended);
            }
        }
    }

    /// Evaluate a `?lit <bif:contains> "words"` pattern: bind the subject to
    /// every string literal containing any of the query words.  The text
    /// index yields literal `TermId`s directly, so this path stays entirely
    /// in id space.
    fn extend_with_text_search(
        &self,
        tp: &TriplePatternAst,
        row: &IdRow,
        out: &mut Vec<IdRow>,
    ) -> Result<(), SparqlError> {
        let words = text_query_words(self.store, &self.vars, tp, row)?;
        let word_refs: Vec<&str> = words.iter().map(String::as_str).collect();
        let matches = self
            .store
            .text_index()
            .search_any(&word_refs, self.text_cap);

        match &tp.subject {
            VarOrTerm::Var(var) => {
                let slot = self
                    .vars
                    .id_of(var)
                    .expect("pattern variables are all registered");
                for m in matches {
                    match row[slot] {
                        Some(existing) if existing != m.literal => continue,
                        _ => {}
                    }
                    let mut extended = row.clone();
                    extended[slot] = Some(m.literal);
                    out.push(extended);
                }
            }
            VarOrTerm::Term(term) => {
                // Bound subject: keep the row iff that literal matches.
                let keeps = self
                    .store
                    .id_of(term)
                    .is_some_and(|id| matches.iter().any(|m| m.literal == id));
                if keeps {
                    out.push(row.clone());
                }
            }
        }
        Ok(())
    }
}

/// True if a triple pattern's predicate is one of the full-text extension
/// predicates.
pub fn is_text_search_pattern(tp: &TriplePatternAst) -> bool {
    match &tp.predicate {
        VarOrTerm::Term(Term::Iri(iri)) => TEXT_SEARCH_PREDICATES.contains(&iri.as_str()),
        _ => false,
    }
}

/// Extract search words from a Virtuoso-style containment expression, e.g.
/// `'danish' OR 'straits'` → `["danish", "straits"]`.
pub fn parse_text_query(text: &str) -> Vec<String> {
    tokenize(text)
        .into_iter()
        .filter(|w| w != "or" && w != "and" && w != "not")
        .collect()
}

/// SPARQL effective boolean value of a term.
pub(crate) fn term_truthiness(term: Term) -> bool {
    match term {
        Term::Literal(lit) => {
            if lit.is_boolean() {
                lit.lexical == "true" || lit.lexical == "1"
            } else if lit.is_numeric() {
                lit.lexical
                    .parse::<f64>()
                    .map(|v| v != 0.0)
                    .unwrap_or(false)
            } else {
                !lit.lexical.is_empty()
            }
        }
        _ => true,
    }
}

/// Evaluate a filter expression under an id row.  `Ok(None)` means the
/// expression is an error for this row (e.g. unbound variable), which
/// SPARQL treats as false at the FILTER level.
///
/// This is one of the two decode points of the pipeline: variables the
/// expression references are resolved from `TermId` to [`Term`] on demand,
/// because filters compare lexical values.  Shared by the naive evaluator
/// and the planned executor's pushed-down filters.
pub(crate) fn eval_expression(
    store: &Store,
    vars: &VarRegistry,
    expr: &Expression,
    row: &IdRow,
) -> Result<Option<Term>, SparqlError> {
    let boolean = |b: bool| Some(Term::boolean(b));
    let var_term = |v: &str| -> Option<Term> {
        vars.id_of(v)
            .and_then(|slot| row[slot])
            .and_then(|id| store.term_of(id))
            .cloned()
    };
    let compare = |a: &Expression,
                   b: &Expression,
                   accept: &dyn Fn(std::cmp::Ordering) -> bool|
     -> Result<Option<Term>, SparqlError> {
        let (Some(ta), Some(tb)) = (
            eval_expression(store, vars, a, row)?,
            eval_expression(store, vars, b, row)?,
        ) else {
            return Ok(None);
        };
        let ordering = term_compare(&ta, &tb);
        Ok(Some(Term::boolean(accept(ordering))))
    };
    match expr {
        Expression::Var(v) => Ok(var_term(v)),
        Expression::Constant(t) => Ok(Some(t.clone())),
        Expression::Bound(v) => Ok(boolean(
            vars.id_of(v).is_some_and(|slot| row[slot].is_some()),
        )),
        Expression::Not(inner) => {
            let value = eval_expression(store, vars, inner, row)?;
            Ok(boolean(!value.map(term_truthiness).unwrap_or(false)))
        }
        Expression::And(a, b) => {
            let left = eval_expression(store, vars, a, row)?
                .map(term_truthiness)
                .unwrap_or(false);
            if !left {
                return Ok(boolean(false));
            }
            let right = eval_expression(store, vars, b, row)?
                .map(term_truthiness)
                .unwrap_or(false);
            Ok(boolean(right))
        }
        Expression::Or(a, b) => {
            let left = eval_expression(store, vars, a, row)?
                .map(term_truthiness)
                .unwrap_or(false);
            if left {
                return Ok(boolean(true));
            }
            let right = eval_expression(store, vars, b, row)?
                .map(term_truthiness)
                .unwrap_or(false);
            Ok(boolean(right))
        }
        Expression::Eq(a, b) => compare(a, b, &|o| o == std::cmp::Ordering::Equal),
        Expression::Neq(a, b) => compare(a, b, &|o| o != std::cmp::Ordering::Equal),
        Expression::Lt(a, b) => compare(a, b, &|o| o == std::cmp::Ordering::Less),
        Expression::Gt(a, b) => compare(a, b, &|o| o == std::cmp::Ordering::Greater),
        Expression::Le(a, b) => compare(a, b, &|o| o != std::cmp::Ordering::Greater),
        Expression::Ge(a, b) => compare(a, b, &|o| o != std::cmp::Ordering::Less),
        Expression::Contains(a, b) => {
            let (Some(ta), Some(tb)) = (
                eval_expression(store, vars, a, row)?,
                eval_expression(store, vars, b, row)?,
            ) else {
                return Ok(None);
            };
            let hay = term_text(&ta).to_lowercase();
            let needle = term_text(&tb).to_lowercase();
            Ok(boolean(hay.contains(&needle)))
        }
        Expression::Regex(a, b) => {
            let (Some(ta), Some(tb)) = (
                eval_expression(store, vars, a, row)?,
                eval_expression(store, vars, b, row)?,
            ) else {
                return Ok(None);
            };
            let hay = term_text(&ta).to_lowercase();
            let pattern = term_text(&tb).to_lowercase();
            Ok(boolean(regex_lite(&hay, &pattern)))
        }
        Expression::Lang(inner) => {
            let Some(t) = eval_expression(store, vars, inner, row)? else {
                return Ok(None);
            };
            let lang = t
                .as_literal()
                .and_then(|l| l.language.clone())
                .unwrap_or_default();
            Ok(Some(Term::literal_str(lang)))
        }
        Expression::Str(inner) => {
            let Some(t) = eval_expression(store, vars, inner, row)? else {
                return Ok(None);
            };
            Ok(Some(Term::literal_str(term_text(&t).to_string())))
        }
    }
}

/// Compare two terms: numerically when both parse as numbers, otherwise by
/// their textual form.
fn term_compare(a: &Term, b: &Term) -> std::cmp::Ordering {
    let num =
        |t: &Term| -> Option<f64> { t.as_literal().and_then(|l| l.lexical.parse::<f64>().ok()) };
    if let (Some(x), Some(y)) = (num(a), num(b)) {
        return x.partial_cmp(&y).unwrap_or(std::cmp::Ordering::Equal);
    }
    term_text(a).cmp(term_text(b))
}

/// The comparable / searchable text of a term.
fn term_text(t: &Term) -> &str {
    match t {
        Term::Iri(iri) => iri,
        Term::Blank(b) => b,
        Term::Literal(l) => &l.lexical,
    }
}

/// A tiny regex evaluator supporting the anchors `^`/`$` and plain substring
/// patterns — enough for the benchmark queries, without a regex dependency.
///
/// Only the **first** leading `^` and the **last** trailing `$` are anchors;
/// any further `^`/`$` characters are part of the pattern text.  (The
/// previous implementation used `trim_start_matches`/`trim_end_matches`,
/// which strip *every* repeated anchor character, so `^^a` silently matched
/// like `^a` instead of requiring a literal `^`.)
fn regex_lite(text: &str, pattern: &str) -> bool {
    let starts = pattern.starts_with('^');
    let core = if starts { &pattern[1..] } else { pattern };
    let ends = core.ends_with('$');
    let core = if ends { &core[..core.len() - 1] } else { core };
    match (starts, ends) {
        (true, true) => text == core,
        (true, false) => text.starts_with(core),
        (false, true) => text.ends_with(core),
        (false, false) => text.contains(core),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgqan_rdf::{vocab, Triple};

    /// The DBpedia fragment of the paper's running example 𝑞_E plus a few
    /// distractors.
    fn running_example_store() -> Store {
        let mut store = Store::new();
        let sea = Term::iri("http://dbpedia.org/resource/Baltic_Sea");
        let north_sea = Term::iri("http://dbpedia.org/resource/North_Sea");
        let straits = Term::iri("http://dbpedia.org/resource/Danish_straits");
        let kali = Term::iri("http://dbpedia.org/resource/Kaliningrad");
        let yantar = Term::iri("http://dbpedia.org/resource/Yantar,_Kaliningrad");
        let label = Term::iri(vocab::RDFS_LABEL);

        store.insert_all([
            Triple::new(sea.clone(), label.clone(), Term::literal_str("Baltic Sea")),
            Triple::new(
                north_sea.clone(),
                label.clone(),
                Term::literal_str("North Sea"),
            ),
            Triple::new(
                straits.clone(),
                label.clone(),
                Term::literal_str("Danish Straits"),
            ),
            Triple::new(
                kali.clone(),
                label.clone(),
                Term::literal_str("Kaliningrad"),
            ),
            Triple::new(
                yantar.clone(),
                label.clone(),
                Term::literal_str("Yantar, Kaliningrad"),
            ),
            Triple::new(
                sea.clone(),
                Term::iri("http://dbpedia.org/property/outflow"),
                straits.clone(),
            ),
            Triple::new(
                sea.clone(),
                Term::iri("http://dbpedia.org/ontology/nearestCity"),
                kali.clone(),
            ),
            Triple::new(
                north_sea.clone(),
                Term::iri("http://dbpedia.org/property/outflow"),
                Term::iri("http://dbpedia.org/resource/English_Channel"),
            ),
            Triple::new(
                sea.clone(),
                Term::iri(vocab::RDF_TYPE),
                Term::iri("http://dbpedia.org/ontology/Sea"),
            ),
            Triple::new(
                kali.clone(),
                Term::iri("http://dbpedia.org/ontology/populationTotal"),
                Term::integer(431000),
            ),
            Triple::new(
                kali,
                Term::iri(vocab::RDF_TYPE),
                Term::iri("http://dbpedia.org/ontology/City"),
            ),
        ]);
        store
    }

    #[test]
    fn figure1_query_returns_baltic_sea() {
        let store = running_example_store();
        let results = execute_query(
            &store,
            r#"PREFIX dbv: <http://dbpedia.org/resource/>
               SELECT ?sea WHERE {
                 ?sea <http://dbpedia.org/property/outflow> dbv:Danish_straits .
                 ?sea <http://dbpedia.org/ontology/nearestCity> dbv:Kaliningrad . }"#,
        )
        .unwrap();
        let rows = results.rows();
        assert_eq!(rows.len(), 1);
        assert_eq!(
            rows[0].get("sea"),
            Some(&Term::iri("http://dbpedia.org/resource/Baltic_Sea"))
        );
    }

    #[test]
    fn select_star_returns_all_variables() {
        let store = running_example_store();
        let results = execute_query(
            &store,
            "SELECT * WHERE { ?s <http://dbpedia.org/property/outflow> ?o . }",
        )
        .unwrap();
        assert_eq!(results.rows().len(), 2);
        assert!(results.rows()[0].is_bound("s"));
        assert!(results.rows()[0].is_bound("o"));
    }

    #[test]
    fn ask_query_answers_presence() {
        let store = running_example_store();
        let yes = execute_query(
            &store,
            "ASK { <http://dbpedia.org/resource/Baltic_Sea> a <http://dbpedia.org/ontology/Sea> }",
        )
        .unwrap();
        assert_eq!(yes.as_boolean(), Some(true));
        let no = execute_query(
            &store,
            "ASK { <http://dbpedia.org/resource/Baltic_Sea> a <http://dbpedia.org/ontology/River> }",
        )
        .unwrap();
        assert_eq!(no.as_boolean(), Some(false));
    }

    #[test]
    fn optional_keeps_rows_without_match() {
        let store = running_example_store();
        // North Sea has an outflow but no rdf:type in the store.
        let results = execute_query(
            &store,
            "SELECT ?sea ?type WHERE { ?sea <http://dbpedia.org/property/outflow> ?x . \
             OPTIONAL { ?sea a ?type . } }",
        )
        .unwrap();
        let rs = results.as_solutions().unwrap();
        assert_eq!(rs.len(), 2);
        let with_type = rs.rows().iter().filter(|b| b.is_bound("type")).count();
        let without_type = rs.rows().iter().filter(|b| !b.is_bound("type")).count();
        assert_eq!(with_type, 1);
        assert_eq!(without_type, 1);
    }

    #[test]
    fn distinct_and_limit_and_offset() {
        let store = running_example_store();
        let all = execute_query(&store, "SELECT ?p WHERE { ?s ?p ?o . }").unwrap();
        let distinct = execute_query(&store, "SELECT DISTINCT ?p WHERE { ?s ?p ?o . }").unwrap();
        assert!(distinct.rows().len() < all.rows().len());
        assert_eq!(distinct.rows().len(), 5);

        let limited = execute_query(&store, "SELECT ?p WHERE { ?s ?p ?o . } LIMIT 3").unwrap();
        assert_eq!(limited.rows().len(), 3);

        let offset = execute_query(
            &store,
            "SELECT DISTINCT ?p WHERE { ?s ?p ?o . } LIMIT 10 OFFSET 4",
        )
        .unwrap();
        assert_eq!(offset.rows().len(), 1);
    }

    #[test]
    fn bif_contains_finds_potential_relevant_vertices() {
        let store = running_example_store();
        // The paper's potentialRelevantVertices query for "Danish Straits".
        let results = execute_query(
            &store,
            r#"SELECT DISTINCT ?v ?d WHERE {
                 ?v ?p ?d .
                 ?d <bif:contains> "'danish' OR 'straits'" . } LIMIT 400"#,
        )
        .unwrap();
        let rs = results.as_solutions().unwrap();
        assert_eq!(rs.len(), 1);
        assert_eq!(
            rs.rows()[0].get("v"),
            Some(&Term::iri("http://dbpedia.org/resource/Danish_straits"))
        );

        // "Kaliningrad" must return both Kaliningrad and Yantar,_Kaliningrad.
        let results = execute_query(
            &store,
            r#"SELECT DISTINCT ?v WHERE {
                 ?v ?p ?d .
                 ?d <bif:contains> "'kaliningrad'" . } LIMIT 400"#,
        )
        .unwrap();
        assert_eq!(results.rows().len(), 2);
    }

    #[test]
    fn stardog_dialect_predicate_also_works() {
        let store = running_example_store();
        let results = execute_query(
            &store,
            r#"SELECT ?v WHERE { ?v ?p ?d . ?d <tag:stardog:api:property:textMatch> "baltic" . }"#,
        )
        .unwrap();
        assert_eq!(results.rows().len(), 1);
    }

    #[test]
    fn filter_numeric_comparison() {
        let store = running_example_store();
        let results = execute_query(
            &store,
            "SELECT ?city WHERE { ?city <http://dbpedia.org/ontology/populationTotal> ?pop . \
             FILTER (?pop > 100000) }",
        )
        .unwrap();
        assert_eq!(results.rows().len(), 1);
        let none = execute_query(
            &store,
            "SELECT ?city WHERE { ?city <http://dbpedia.org/ontology/populationTotal> ?pop . \
             FILTER (?pop > 1000000) }",
        )
        .unwrap();
        assert!(none.rows().is_empty());
    }

    #[test]
    fn filter_contains_and_regex_and_bound() {
        let store = running_example_store();
        let results = execute_query(
            &store,
            r#"SELECT ?s WHERE { ?s <http://www.w3.org/2000/01/rdf-schema#label> ?l .
                FILTER (CONTAINS(?l, "sea")) }"#,
        )
        .unwrap();
        assert_eq!(results.rows().len(), 2);

        let anchored = execute_query(
            &store,
            r#"SELECT ?s WHERE { ?s <http://www.w3.org/2000/01/rdf-schema#label> ?l .
                FILTER (REGEX(?l, "^baltic")) }"#,
        )
        .unwrap();
        assert_eq!(anchored.rows().len(), 1);

        let bound = execute_query(
            &store,
            r#"SELECT ?s ?t WHERE { ?s <http://www.w3.org/2000/01/rdf-schema#label> ?l .
                OPTIONAL { ?s a ?t . } FILTER (BOUND(?t)) }"#,
        )
        .unwrap();
        assert_eq!(bound.rows().len(), 2);
    }

    #[test]
    fn union_combines_branches() {
        let store = running_example_store();
        let results = execute_query(
            &store,
            "SELECT ?x WHERE { { ?x <http://dbpedia.org/property/outflow> ?y . } UNION \
             { ?x <http://dbpedia.org/ontology/nearestCity> ?y . } }",
        )
        .unwrap();
        assert_eq!(results.rows().len(), 3);
    }

    #[test]
    fn join_across_shared_variable() {
        let store = running_example_store();
        // Which class does the thing nearest to Kaliningrad belong to?
        let results = execute_query(
            &store,
            "SELECT ?type WHERE { ?sea <http://dbpedia.org/ontology/nearestCity> \
             <http://dbpedia.org/resource/Kaliningrad> . ?sea a ?type . }",
        )
        .unwrap();
        assert_eq!(results.rows().len(), 1);
        assert_eq!(
            results.rows()[0].get("type"),
            Some(&Term::iri("http://dbpedia.org/ontology/Sea"))
        );
    }

    #[test]
    fn empty_pattern_select_returns_single_empty_row_for_ask() {
        let store = running_example_store();
        let results = execute_query(&store, "ASK { }").unwrap();
        assert_eq!(results.as_boolean(), Some(true));
    }

    #[test]
    fn unbound_filter_variable_is_false_not_error() {
        let store = running_example_store();
        let results = execute_query(
            &store,
            "SELECT ?s WHERE { ?s <http://dbpedia.org/property/outflow> ?o . FILTER (?missing > 3) }",
        )
        .unwrap();
        assert!(results.rows().is_empty());
    }

    #[test]
    fn text_search_cap_accounts_for_offset() {
        // 20 literals all containing "city".  `LIMIT 10 OFFSET 4` must fetch
        // at least 14 text-search candidates so that after skipping 4 rows a
        // full page of 10 remains; capping fan-out at the bare LIMIT (the old
        // behaviour) starved the page down to 6 rows.
        let mut store = Store::new();
        for i in 0..20 {
            store.insert(Triple::new(
                Term::iri(format!("http://e/c{i}")),
                Term::iri(vocab::RDFS_LABEL),
                Term::literal_str(format!("city number {i}")),
            ));
        }
        let results = execute_query(
            &store,
            r#"SELECT ?d WHERE { ?d <bif:contains> "'city'" . } LIMIT 10 OFFSET 4"#,
        )
        .unwrap();
        assert_eq!(results.rows().len(), 10);

        // Without OFFSET the LIMIT alone still caps the fan-out.
        let results = execute_query(
            &store,
            r#"SELECT ?d WHERE { ?d <bif:contains> "'city'" . } LIMIT 10"#,
        )
        .unwrap();
        assert_eq!(results.rows().len(), 10);
    }

    #[test]
    fn repeated_variable_in_pattern_requires_equal_ids() {
        // ?x ?p ?x only matches triples whose subject and object coincide.
        let mut store = Store::new();
        let node = Term::iri("http://e/self");
        store.insert(Triple::new(
            node.clone(),
            Term::iri("http://e/loop"),
            node.clone(),
        ));
        store.insert(Triple::new(
            node.clone(),
            Term::iri("http://e/other"),
            Term::iri("http://e/elsewhere"),
        ));
        let results = execute_query(&store, "SELECT ?x WHERE { ?x ?p ?x . }").unwrap();
        assert_eq!(results.rows().len(), 1);
        assert_eq!(results.rows()[0].get("x"), Some(&node));
    }

    #[test]
    fn constant_absent_from_dictionary_yields_no_rows_not_an_error() {
        let store = running_example_store();
        let results = execute_query(
            &store,
            "SELECT ?s WHERE { ?s <http://never/interned> ?o . }",
        )
        .unwrap();
        assert!(results.rows().is_empty());
    }

    #[test]
    fn text_query_parsing_strips_connectives_and_quotes() {
        assert_eq!(
            parse_text_query("'danish' OR 'straits'"),
            vec!["danish", "straits"]
        );
        assert_eq!(parse_text_query("Jim AND Gray"), vec!["jim", "gray"]);
        assert_eq!(parse_text_query(""), Vec::<String>::new());
    }

    #[test]
    fn regex_lite_treats_only_one_anchor_as_meta() {
        // Single anchors behave as anchors.
        assert!(regex_lite("baltic sea", "^baltic"));
        assert!(regex_lite("baltic sea", "sea$"));
        assert!(regex_lite("baltic", "^baltic$"));
        assert!(!regex_lite("north baltic", "^baltic"));

        // A doubled anchor is one anchor + one literal character.  The old
        // trim_*_matches implementation stripped both, so `^^a` matched any
        // string starting with "a".
        assert!(!regex_lite("abc", "^^a"));
        assert!(regex_lite("^abc", "^^a"));
        assert!(!regex_lite("xa", "a$$"));
        assert!(regex_lite("xa$", "a$$"));
        assert!(regex_lite("a$", "^a$$"));
        assert!(!regex_lite("a", "^a$$"));

        // Interior anchors are plain characters.
        assert!(regex_lite("a^b", "a^b"));
        assert!(regex_lite("a$b", "a$b"));

        // Degenerate patterns.
        assert!(regex_lite("anything", "^"));
        assert!(regex_lite("anything", "$"));
        assert!(regex_lite("", "^$"));
        assert!(!regex_lite("x", "^$"));
    }

    #[test]
    fn regex_filter_with_doubled_anchor_matches_literal_caret() {
        let mut store = Store::new();
        store.insert(Triple::new(
            Term::iri("http://e/a"),
            Term::iri(vocab::RDFS_LABEL),
            Term::literal_str("^marked"),
        ));
        store.insert(Triple::new(
            Term::iri("http://e/b"),
            Term::iri(vocab::RDFS_LABEL),
            Term::literal_str("marked"),
        ));
        // `^^marked` = anchored literal "^marked": only http://e/a matches.
        let results = execute_query(
            &store,
            r#"SELECT ?s WHERE { ?s <http://www.w3.org/2000/01/rdf-schema#label> ?l .
                FILTER (REGEX(?l, "^^marked")) }"#,
        )
        .unwrap();
        assert_eq!(results.rows().len(), 1);
        assert_eq!(results.rows()[0].get("s"), Some(&Term::iri("http://e/a")));
    }

    #[test]
    fn naive_evaluator_agrees_with_planned_execution() {
        let store = running_example_store();
        let queries = [
            "SELECT ?sea ?type WHERE { ?sea <http://dbpedia.org/property/outflow> ?x . \
             OPTIONAL { ?sea a ?type . } }",
            "SELECT ?x WHERE { { ?x <http://dbpedia.org/property/outflow> ?y . } UNION \
             { ?x <http://dbpedia.org/ontology/nearestCity> ?y . } }",
            "SELECT DISTINCT ?p WHERE { ?s ?p ?o . }",
            r#"SELECT DISTINCT ?v ?d WHERE { ?v ?p ?d . ?d <bif:contains> "'danish'" . }"#,
            "SELECT ?city WHERE { ?city <http://dbpedia.org/ontology/populationTotal> ?pop . \
             FILTER (?pop > 100000) }",
            "ASK { <http://dbpedia.org/resource/Baltic_Sea> a <http://dbpedia.org/ontology/Sea> }",
        ];
        for q in queries {
            let parsed = parse_query(q).unwrap();
            let planned = execute(&store, &parsed).unwrap();
            let naive = execute_naive(&store, &parsed).unwrap();
            match (planned, naive) {
                (QueryResults::Boolean(a), QueryResults::Boolean(b)) => assert_eq!(a, b, "{q}"),
                (QueryResults::Solutions(a), QueryResults::Solutions(b)) => {
                    let mut a: Vec<_> = a.rows().to_vec();
                    let mut b: Vec<_> = b.rows().to_vec();
                    let key = |r: &Binding| format!("{r:?}");
                    a.sort_by_key(key);
                    b.sort_by_key(key);
                    assert_eq!(a, b, "{q}");
                }
                _ => panic!("result kinds diverged for {q}"),
            }
        }
    }

    #[test]
    fn variable_predicate_patterns_work() {
        let store = running_example_store();
        let results = execute_query(
            &store,
            "SELECT ?p ?o WHERE { <http://dbpedia.org/resource/Baltic_Sea> ?p ?o . }",
        )
        .unwrap();
        assert_eq!(results.rows().len(), 4);
    }
}
