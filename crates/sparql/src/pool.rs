//! A persistent, bounded worker pool for pipeline requests.
//!
//! The `kgqan` core crate's `QaService::answer_batch`
//! historically spawned a scoped thread pool per call; that overlapped
//! endpoint round-trips nicely, but it gave an external admission layer
//! (the HTTP front-end in `kgqan-server`) nothing to aim at: no queue to
//! bound, no depth to read for load shedding, and no lifecycle to drain on
//! shutdown.  [`WorkerPool`] fixes that:
//!
//! * **Bounded queue.**  Jobs wait in a FIFO of capacity
//!   [`PoolConfig::queue_bound`]; [`WorkerPool::try_submit`] *never blocks* —
//!   a full queue is reported as [`SubmitError::QueueFull`] so the caller
//!   can shed load (HTTP 503) instead of buffering unboundedly.
//! * **Observable depth.**  [`WorkerPool::queue_depth`] and
//!   [`WorkerPool::stats`] read the real queued/running counters, so a
//!   shedding threshold compares against actual backlog, not a guess.
//! * **Clean shutdown.**  [`WorkerPool::shutdown`] stops accepting new
//!   jobs, *drains* everything already accepted (queued jobs run to
//!   completion — accepted work is a promise), and joins the workers.
//!   Dropping the last handle shuts the pool down the same way, so a
//!   `QaService` owning a pool never leaks threads.
//! * **Tickets.**  [`WorkerPool::try_submit`] hands back a [`Ticket`] the
//!   caller can block on ([`Ticket::wait`] / [`Ticket::wait_timeout`]).  A
//!   job that panics poisons only its own ticket ([`Ticket::wait`] returns
//!   `None`); the worker thread survives and keeps serving the queue.

use std::collections::VecDeque;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Sizing of a [`WorkerPool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolConfig {
    /// Number of persistent worker threads.
    pub workers: usize,
    /// Maximum number of jobs waiting in the queue (excluding the jobs
    /// currently running on workers).  Submissions beyond the bound fail
    /// with [`SubmitError::QueueFull`].
    pub queue_bound: usize,
}

impl Default for PoolConfig {
    /// Four workers (the floor `answer_batch` always used: request
    /// wall-clock is dominated by endpoint round-trips, which overlap even
    /// on one core) and a queue of 64.
    fn default() -> Self {
        PoolConfig {
            workers: 4,
            queue_bound: 64,
        }
    }
}

impl PoolConfig {
    /// A pool with `workers` threads and the default queue bound.
    pub fn with_workers(workers: usize) -> Self {
        PoolConfig {
            workers,
            ..Default::default()
        }
    }

    /// Replace the queue bound.
    pub fn queue_bound(mut self, bound: usize) -> Self {
        self.queue_bound = bound;
        self
    }
}

/// Why a submission was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is at its bound; the caller should shed or retry later.
    QueueFull {
        /// The configured bound that was hit.
        bound: usize,
    },
    /// The pool is shutting down (or already shut down) and accepts no new
    /// work.
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull { bound } => {
                write!(f, "worker queue full (bound {bound})")
            }
            SubmitError::ShuttingDown => write!(f, "worker pool is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// A snapshot of the pool's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Jobs waiting in the queue right now.
    pub queued: usize,
    /// Jobs currently executing on workers.
    pub running: usize,
    /// Worker threads serving the pool.
    pub workers: usize,
    /// Jobs completed since the pool started (including panicked ones).
    pub completed: u64,
    /// Submissions rejected because the queue was full.
    pub rejected: u64,
}

enum TicketState<T> {
    Pending,
    Done(T),
    /// The job panicked (or was lost); no value will ever arrive.
    Lost,
}

struct TicketCell<T> {
    state: Mutex<TicketState<T>>,
    ready: Condvar,
}

/// The receiving half of a submitted job: blocks until the job's result is
/// available.
pub struct Ticket<T> {
    cell: Arc<TicketCell<T>>,
}

impl<T> fmt::Debug for Ticket<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Ticket").finish_non_exhaustive()
    }
}

impl<T> Ticket<T> {
    fn new() -> (Ticket<T>, Arc<TicketCell<T>>) {
        let cell = Arc::new(TicketCell {
            state: Mutex::new(TicketState::Pending),
            ready: Condvar::new(),
        });
        (
            Ticket {
                cell: Arc::clone(&cell),
            },
            cell,
        )
    }

    /// Block until the job finishes.  Returns `None` if the job panicked —
    /// the pool survives, only this ticket is lost.
    pub fn wait(self) -> Option<T> {
        let mut state = self
            .cell
            .state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        loop {
            match std::mem::replace(&mut *state, TicketState::Pending) {
                TicketState::Done(value) => return Some(value),
                TicketState::Lost => return None,
                TicketState::Pending => {
                    state = self
                        .cell
                        .ready
                        .wait(state)
                        .unwrap_or_else(|poisoned| poisoned.into_inner());
                }
            }
        }
    }

    /// Block until the job finishes or `timeout` elapses.  `Err(self)`
    /// returns the ticket on timeout so the caller can keep waiting;
    /// `Ok(None)` means the job panicked.
    pub fn wait_timeout(self, timeout: Duration) -> Result<Option<T>, Ticket<T>> {
        let deadline = std::time::Instant::now() + timeout;
        let mut state = self
            .cell
            .state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        loop {
            match std::mem::replace(&mut *state, TicketState::Pending) {
                TicketState::Done(value) => return Ok(Some(value)),
                TicketState::Lost => return Ok(None),
                TicketState::Pending => {
                    let remaining = deadline.saturating_duration_since(std::time::Instant::now());
                    if remaining.is_zero() {
                        drop(state);
                        return Err(self);
                    }
                    let (guard, _timed_out) = self
                        .cell
                        .ready
                        .wait_timeout(state, remaining)
                        .unwrap_or_else(|poisoned| poisoned.into_inner());
                    state = guard;
                }
            }
        }
    }
}

impl<T> TicketCell<T> {
    fn fulfil(&self, state: TicketState<T>) {
        let mut slot = self
            .state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        *slot = state;
        self.ready.notify_all();
    }
}

type Job = Box<dyn FnOnce() + Send + 'static>;

struct PoolShared {
    queue: Mutex<QueueState>,
    job_ready: Condvar,
    idle: Condvar,
    queued: AtomicUsize,
    running: AtomicUsize,
    /// Behind its own `Arc` so each queued job can count itself as done
    /// *before* fulfilling its ticket — a waiter that saw the result then
    /// always sees the counter too.
    completed: Arc<AtomicU64>,
    rejected: AtomicU64,
    workers: usize,
    queue_bound: usize,
}

struct QueueState {
    jobs: VecDeque<Job>,
    shutting_down: bool,
}

impl PoolShared {
    fn worker_loop(&self) {
        loop {
            let job = {
                let mut state = self
                    .queue
                    .lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
                loop {
                    if let Some(job) = state.jobs.pop_front() {
                        break job;
                    }
                    if state.shutting_down {
                        return;
                    }
                    state = self
                        .job_ready
                        .wait(state)
                        .unwrap_or_else(|poisoned| poisoned.into_inner());
                }
            };
            self.queued.fetch_sub(1, Ordering::Relaxed);
            self.running.fetch_add(1, Ordering::Relaxed);
            // A panicking job must not take the worker thread (and every
            // job queued behind it) down with it.
            // The job itself bumps `completed` (via its `LostOnDrop` guard
            // on the panic path) just before fulfilling its ticket.
            let _ = catch_unwind(AssertUnwindSafe(job));
            self.running.fetch_sub(1, Ordering::Relaxed);
            self.idle.notify_all();
        }
    }
}

struct PoolHandles {
    shared: Arc<PoolShared>,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl PoolHandles {
    fn shutdown(&self) {
        {
            let mut state = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            state.shutting_down = true;
        }
        // Workers drain the remaining queue before observing the flag as a
        // reason to exit, so accepted jobs still run.
        self.shared.job_ready.notify_all();
        let handles = std::mem::take(
            &mut *self
                .handles
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner()),
        );
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for PoolHandles {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// A persistent, bounded worker pool.  Cloning is cheap (`Arc` inside) and
/// all clones share the same queue and workers; the pool shuts down —
/// draining accepted jobs — when [`WorkerPool::shutdown`] is called or the
/// last clone is dropped.
#[derive(Clone)]
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    handles: Arc<PoolHandles>,
}

impl WorkerPool {
    /// Spawn a pool with `config.workers` threads (at least one) and a
    /// queue bounded at `config.queue_bound`.
    pub fn new(config: PoolConfig) -> WorkerPool {
        let workers = config.workers.max(1);
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                shutting_down: false,
            }),
            job_ready: Condvar::new(),
            idle: Condvar::new(),
            queued: AtomicUsize::new(0),
            running: AtomicUsize::new(0),
            completed: Arc::new(AtomicU64::new(0)),
            rejected: AtomicU64::new(0),
            workers,
            queue_bound: config.queue_bound,
        });
        let mut handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let shared = Arc::clone(&shared);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("kgqan-worker-{i}"))
                    .spawn(move || shared.worker_loop())
                    .expect("spawn worker thread"),
            );
        }
        WorkerPool {
            handles: Arc::new(PoolHandles {
                shared: Arc::clone(&shared),
                handles: Mutex::new(handles),
            }),
            shared,
        }
    }

    /// Enqueue a job without blocking.  Returns a [`Ticket`] for the job's
    /// result, or [`SubmitError::QueueFull`] / [`SubmitError::ShuttingDown`]
    /// when the job was *not* accepted — the caller decides whether to shed,
    /// retry or fail.
    pub fn try_submit<T, F>(&self, job: F) -> Result<Ticket<T>, SubmitError>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let (ticket, cell) = Ticket::new();
        {
            let mut state = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            if state.shutting_down {
                return Err(SubmitError::ShuttingDown);
            }
            if state.jobs.len() >= self.shared.queue_bound {
                self.shared.rejected.fetch_add(1, Ordering::Relaxed);
                return Err(SubmitError::QueueFull {
                    bound: self.shared.queue_bound,
                });
            }
            // If the closure panics, the catch_unwind in the worker loop
            // swallows it; the guard below marks the ticket lost so a
            // waiter wakes instead of blocking forever.
            let guard = LostOnDrop {
                cell: Some(Arc::clone(&cell)),
                completed: Arc::clone(&self.shared.completed),
            };
            state.jobs.push_back(Box::new(move || {
                let mut guard = guard;
                let value = job();
                if let Some(cell) = guard.cell.take() {
                    guard.completed.fetch_add(1, Ordering::Relaxed);
                    cell.fulfil(TicketState::Done(value));
                }
            }));
            self.shared.queued.fetch_add(1, Ordering::Relaxed);
        }
        self.shared.job_ready.notify_one();
        Ok(ticket)
    }

    /// Jobs waiting in the queue right now (excludes running jobs) — the
    /// number an admission-control layer compares against its shedding
    /// threshold.
    pub fn queue_depth(&self) -> usize {
        self.shared.queued.load(Ordering::Relaxed)
    }

    /// Jobs accepted but not yet finished: queued plus running.
    pub fn in_flight(&self) -> usize {
        self.shared.queued.load(Ordering::Relaxed) + self.shared.running.load(Ordering::Relaxed)
    }

    /// The configured queue bound.
    pub fn queue_bound(&self) -> usize {
        self.shared.queue_bound
    }

    /// A snapshot of the pool's counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            queued: self.shared.queued.load(Ordering::Relaxed),
            running: self.shared.running.load(Ordering::Relaxed),
            workers: self.shared.workers,
            completed: self.shared.completed.load(Ordering::Relaxed),
            rejected: self.shared.rejected.load(Ordering::Relaxed),
        }
    }

    /// Block until every accepted job has finished (the queue is empty and
    /// no worker is running a job).
    pub fn drain(&self) {
        let mut state = self
            .shared
            .queue
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        while !state.jobs.is_empty() || self.shared.running.load(Ordering::Relaxed) > 0 {
            state = self
                .shared
                .idle
                .wait_timeout(state, Duration::from_millis(50))
                .unwrap_or_else(|poisoned| poisoned.into_inner())
                .0;
        }
    }

    /// Stop accepting new jobs, run every job already accepted to
    /// completion, and join the worker threads.  Idempotent; concurrent
    /// calls all block until the pool is down.
    pub fn shutdown(&self) {
        self.handles.shutdown();
    }

    /// True once [`WorkerPool::shutdown`] has begun.
    pub fn is_shutting_down(&self) -> bool {
        self.shared
            .queue
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .shutting_down
    }
}

/// Marks the ticket lost if the job closure never ran to completion
/// (worker panicked inside `job()`, or the queue was dropped with the job
/// still in it).
struct LostOnDrop<T> {
    cell: Option<Arc<TicketCell<T>>>,
    completed: Arc<AtomicU64>,
}

impl<T> Drop for LostOnDrop<T> {
    fn drop(&mut self) {
        if let Some(cell) = self.cell.take() {
            // Count first, then wake the waiter, so a caller that observed
            // the outcome also observes the counter.
            self.completed.fetch_add(1, Ordering::Relaxed);
            cell.fulfil(TicketState::Lost);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn jobs_run_and_tickets_deliver_results() {
        let pool = WorkerPool::new(PoolConfig::with_workers(2));
        let tickets: Vec<Ticket<usize>> = (0..8)
            .map(|i| pool.try_submit(move || i * i).unwrap())
            .collect();
        let results: Vec<usize> = tickets.into_iter().map(|t| t.wait().unwrap()).collect();
        assert_eq!(results, vec![0, 1, 4, 9, 16, 25, 36, 49]);
        assert_eq!(pool.stats().completed, 8);
        assert_eq!(pool.queue_depth(), 0);
    }

    #[test]
    fn full_queue_rejects_without_blocking() {
        // One worker, blocked on a gate; queue bound 2.
        let pool = WorkerPool::new(PoolConfig {
            workers: 1,
            queue_bound: 2,
        });
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let release = Arc::clone(&gate);
        let blocker = pool
            .try_submit(move || {
                let (lock, cvar) = &*release;
                let mut open = lock.lock().unwrap();
                while !*open {
                    open = cvar.wait(open).unwrap();
                }
            })
            .unwrap();
        // Wait until the worker has picked the blocker up.
        while pool.stats().running == 0 {
            std::thread::yield_now();
        }
        // Two fit in the queue, the third is rejected — immediately.
        let a = pool.try_submit(|| 1).unwrap();
        let b = pool.try_submit(|| 2).unwrap();
        let err = pool.try_submit(|| 3).unwrap_err();
        assert_eq!(err, SubmitError::QueueFull { bound: 2 });
        assert_eq!(pool.queue_depth(), 2);
        assert_eq!(pool.stats().rejected, 1);

        let (lock, cvar) = &*gate;
        *lock.lock().unwrap() = true;
        cvar.notify_all();
        assert!(blocker.wait().is_some());
        assert_eq!(a.wait(), Some(1));
        assert_eq!(b.wait(), Some(2));
    }

    #[test]
    fn shutdown_drains_accepted_jobs_then_rejects() {
        let pool = WorkerPool::new(PoolConfig {
            workers: 2,
            queue_bound: 64,
        });
        let ran = Arc::new(AtomicUsize::new(0));
        let tickets: Vec<Ticket<()>> = (0..16)
            .map(|_| {
                let ran = Arc::clone(&ran);
                pool.try_submit(move || {
                    std::thread::sleep(Duration::from_millis(1));
                    ran.fetch_add(1, Ordering::Relaxed);
                })
                .unwrap()
            })
            .collect();
        pool.shutdown();
        // Every accepted job ran to completion before shutdown returned.
        assert_eq!(ran.load(Ordering::Relaxed), 16);
        for t in tickets {
            assert!(t.wait().is_some());
        }
        // New submissions are refused.
        assert_eq!(
            pool.try_submit(|| ()).unwrap_err(),
            SubmitError::ShuttingDown
        );
        assert!(pool.is_shutting_down());
        // Idempotent.
        pool.shutdown();
    }

    #[test]
    fn dropping_the_last_handle_shuts_down_cleanly() {
        let ran = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&ran);
        let ticket = {
            let pool = WorkerPool::new(PoolConfig::with_workers(1));
            let t = pool
                .try_submit(move || flag.store(true, Ordering::Relaxed))
                .unwrap();
            // `pool` dropped here: the accepted job must still run.
            t
        };
        assert_eq!(ticket.wait(), Some(()));
        assert!(ran.load(Ordering::Relaxed));
    }

    #[test]
    fn panicking_job_loses_its_ticket_but_not_the_worker() {
        let pool = WorkerPool::new(PoolConfig::with_workers(1));
        let bad = pool
            .try_submit(|| -> usize { panic!("job blew up") })
            .unwrap();
        assert_eq!(bad.wait(), None);
        // The worker survived and serves the next job.
        let good = pool.try_submit(|| 7usize).unwrap();
        assert_eq!(good.wait(), Some(7));
    }

    #[test]
    fn wait_timeout_returns_ticket_while_pending() {
        let pool = WorkerPool::new(PoolConfig::with_workers(1));
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let release = Arc::clone(&gate);
        let slow = pool
            .try_submit(move || {
                let (lock, cvar) = &*release;
                let mut open = lock.lock().unwrap();
                while !*open {
                    open = cvar.wait(open).unwrap();
                }
                42usize
            })
            .unwrap();
        let slow = match slow.wait_timeout(Duration::from_millis(5)) {
            Err(ticket) => ticket,
            Ok(v) => panic!("expected timeout, got {v:?}"),
        };
        let (lock, cvar) = &*gate;
        *lock.lock().unwrap() = true;
        cvar.notify_all();
        assert_eq!(slow.wait(), Some(42));
    }

    #[test]
    fn drain_waits_for_queued_and_running() {
        let pool = WorkerPool::new(PoolConfig::with_workers(2));
        let count = Arc::new(AtomicUsize::new(0));
        for _ in 0..12 {
            let count = Arc::clone(&count);
            pool.try_submit(move || {
                std::thread::sleep(Duration::from_millis(1));
                count.fetch_add(1, Ordering::Relaxed);
            })
            .unwrap();
        }
        pool.drain();
        assert_eq!(count.load(Ordering::Relaxed), 12);
        assert_eq!(pool.in_flight(), 0);
    }
}
