//! Cost-based query planning and streaming execution.
//!
//! This module is the *plan → execute* split of the engine.  [`Planner`]
//! compiles a parsed [`Query`] into a [`PhysicalPlan`]:
//!
//! * each basic graph pattern's triple patterns are reordered into a
//!   **greedy cardinality-ordered left-deep join**: at every step the
//!   cheapest remaining pattern is chosen, where "cheap" is an exact
//!   `O(log n)` range count over the constant positions
//!   ([`Store::scan_count`]) divided by per-predicate distinct counts
//!   ([`kgqan_rdf::PlannerStats`]) for positions held by already-joined
//!   variables — patterns connected to the rows produced so far are
//!   preferred so cartesian products only happen when the query forces them;
//! * full-text (`bif:contains`) steps are costed from the text index's
//!   posting lists: generative probes are scheduled like any other pattern,
//!   but once their subject is bound by an earlier selective step they
//!   degrade to per-row membership filters (estimate 1);
//! * `FILTER` expressions are **pushed down** to the earliest join step at
//!   which every variable they mention (and that the BGP binds at all) is
//!   bound, so doomed rows die before fanning out;
//! * `DISTINCT`, `OFFSET` and `LIMIT` are plan operators evaluated while
//!   rows stream out of the join pipeline — a `LIMIT k` query stops pulling
//!   (and therefore stops scanning) the moment the page is full, instead of
//!   materialising every match and truncating.
//!
//! Execution ([`PhysicalPlan::execute`]) is a lazy iterator pipeline over
//! id-level rows; nothing upstream runs until the output operator pulls.
//! Every executed plan reports [`ExecMetrics`] — most importantly
//! `rows_scanned`, the number of index/text-index entries the joins
//! touched — and every plan carries a human-readable [`PlanSummary`]
//! (`EXPLAIN`), which the in-process endpoint surfaces per candidate query
//! all the way up to `answer_traced`.
//!
//! ```
//! use kgqan_rdf::{Store, Term, Triple};
//! use kgqan_sparql::{parse_query, plan::Planner};
//!
//! let mut store = Store::new();
//! store.insert(Triple::new(
//!     Term::iri("http://e/Baltic_Sea"),
//!     Term::iri("http://e/outflow"),
//!     Term::iri("http://e/Danish_straits"),
//! ));
//! let query = parse_query(
//!     "SELECT ?sea WHERE { ?sea <http://e/outflow> <http://e/Danish_straits> . }",
//! )
//! .unwrap();
//!
//! let plan = Planner::new(&store).plan(&query);
//! println!("{}", plan.summary()); // EXPLAIN-style operator tree
//! let run = plan.execute().unwrap();
//! assert_eq!(run.results.rows().len(), 1);
//! assert_eq!(run.metrics.rows_scanned, 1); // one index entry touched
//! ```

use std::cell::{Cell, OnceCell, RefCell};
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use kgqan_rdf::{
    EncodedTriple, EncodedTriplePattern, PartitionRange, PlannerStats, Store, StoreSnapshot, Term,
    TermId, TextMatch,
};

use crate::exec::{self, ExecutorPool};

use crate::ast::{Expression, GraphPattern, Query, QueryForm, TriplePatternAst, VarOrTerm};
use crate::error::SparqlError;
use crate::eval::{
    compile_triple_pattern, decode_row, effective_text_cap, eval_expression,
    is_text_search_pattern, parse_text_query, term_truthiness, text_query_words,
    CompiledTriplePattern, IdRow, Slot, VarRegistry,
};
use crate::results::{Binding, QueryResults, ResultSet};

/// Execution counters of one planned query run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecMetrics {
    /// Index entries and text-index matches the join pipeline touched.  This
    /// is the engine's unit of work: a `LIMIT k` query over a large store
    /// should keep it near `k / selectivity`, not near the store size.
    pub rows_scanned: u64,
    /// Rows in the final result (1/0 for ASK).
    pub rows_emitted: u64,
    /// `true` when an [`ExecOptions::deadline`] cut the run short: the
    /// results are a correct *prefix* of the full answer, not the full
    /// answer.
    pub deadline_exceeded: bool,
    /// Set when the run used morsel-driven parallel execution; `None` for
    /// the sequential fast path.
    pub parallel: Option<ParallelMetrics>,
}

/// Work distribution of one morsel-parallel run, surfaced through
/// [`ExecMetrics`] all the way up to `answer_traced`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ParallelMetrics {
    /// Workers that actually drained morsels (the coordinating thread plus
    /// every helper the shared pool had room for) — may be lower than the
    /// planned degree of parallelism under inter-query load.
    pub dop: usize,
    /// Partitions the driver scan was split into.
    pub morsels: usize,
    /// Index entries each participating worker scanned, coordinator first.
    pub rows_scanned_per_worker: Vec<u64>,
}

/// Per-run execution knobs, passed to [`PhysicalPlan::execute_with`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ExecOptions {
    /// Stop producing rows at this instant and return what has been
    /// computed so far with [`ExecMetrics::deadline_exceeded`] set.
    /// Parallel runs check the deadline at every morsel boundary; the
    /// sequential path checks it every few hundred output rows.
    pub deadline: Option<Instant>,
}

/// Planner knobs for morsel-driven parallel execution, installed with
/// [`Planner::with_parallelism`] (and on by default for planners built via
/// [`Planner::for_shared_snapshot`]).
///
/// The degree of parallelism (DOP) is chosen from the planner's own
/// cardinality estimate for the driver scan:
/// `dop = clamp(estimate / rows_per_worker, 1, max_dop)` — a query whose
/// driving scan is estimated under `2 × rows_per_worker` therefore keeps
/// the sequential fast path untouched.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParallelConfig {
    /// Upper bound on workers per query (defaults to the machine's
    /// available parallelism).
    pub max_dop: usize,
    /// Driver-scan rows one worker is expected to absorb; the DOP divisor.
    pub rows_per_worker: f64,
    /// Morsels per chosen worker: more morsels mean finer-grained work
    /// stealing (and deadline checks) at slightly more scheduling overhead.
    pub morsels_per_worker: usize,
    /// `LIMIT`/`OFFSET` pages smaller than this stay sequential: a small
    /// page over a huge scan finishes faster by streaming and stopping
    /// early than by scanning every partition.
    pub min_page_rows: usize,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig {
            max_dop: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            rows_per_worker: 50_000.0,
            morsels_per_worker: 4,
            min_page_rows: 4_096,
        }
    }
}

/// One operator line of a rendered plan: its nesting depth, a label such as
/// `scan ?sea <…outflow> ?x .`, and the planner's cardinality estimate for
/// the step (absolute rows for the first step of a BGP, expected rows per
/// input row afterwards).
#[derive(Debug, Clone, PartialEq)]
pub struct PlanOp {
    /// Nesting depth in the operator tree (0 = outermost).
    pub depth: usize,
    /// Human-readable operator description.
    pub label: String,
    /// The planner's cardinality estimate, where meaningful.
    pub estimate: Option<f64>,
}

/// The `EXPLAIN`-able shape of a [`PhysicalPlan`]: a flattened pre-order
/// walk of the operator tree.  Cheap to clone and carry in per-query
/// statistics (`QueryStat` in the `kgqan` core crate).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PlanSummary {
    /// Operator lines in execution order (outer operators first).
    pub ops: Vec<PlanOp>,
}

impl PlanSummary {
    fn push(&mut self, depth: usize, label: impl Into<String>, estimate: Option<f64>) {
        self.ops.push(PlanOp {
            depth,
            label: label.into(),
            estimate,
        });
    }

    /// The labels of the join steps (scan / text / never-matches / service
    /// lines), in the order the executor runs them — handy for asserting a
    /// join order.
    pub fn step_labels(&self) -> Vec<&str> {
        self.ops
            .iter()
            .filter(|op| {
                op.label.starts_with("scan ")
                    || op.label.starts_with("text ")
                    || op.label.starts_with("never-matches ")
                    || op.label.starts_with("service ")
            })
            .map(|op| op.label.as_str())
            .collect()
    }
}

impl fmt::Display for PlanSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for op in &self.ops {
            for _ in 0..op.depth {
                f.write_str("  ")?;
            }
            f.write_str(&op.label)?;
            if let Some(est) = op.estimate {
                write!(f, "  (est {est:.1})")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Resolves `SERVICE <kg:name>` groups to other query endpoints.
///
/// The planner itself knows one [`Store`]; federation across registered KGs
/// lives a crate up (`kgqan-endpoint`'s `EndpointRegistry` implements this
/// trait).  Keeping the trait here lets the streaming executor call out to a
/// remote KG mid-pipeline without `kgqan-sparql` depending on the endpoint
/// layer.  Install one with [`Planner::with_services`].
pub trait ServiceResolver: Send + Sync {
    /// The KG names this resolver can execute against, used by
    /// [`Planner::plan_checked`] to reject unknown targets with a helpful
    /// error message.
    fn service_names(&self) -> Vec<String>;

    /// Execute `query` against the KG registered under `kg`.
    fn execute_service(&self, kg: &str, query: &Query) -> Result<QueryResults, SparqlError>;
}

/// Cardinality guess for a SERVICE group: the planner has no statistics for
/// the remote KG, so every SERVICE step is costed at a flat row count —
/// expensive enough that local scans are preferred first, finite so the
/// step still schedules.
const SERVICE_ESTIMATE: f64 = 256.0;

/// First id of the run-scoped *foreign term* range: terms returned by a
/// remote SERVICE endpoint that the local dictionary has never seen are
/// interned here so they can flow through the id-level join pipeline.  Ids
/// below this value are local dictionary ids; local stores would need two
/// billion terms to collide, far beyond this engine's scale.
const FOREIGN_BASE: u32 = 1 << 31;

/// Run-scoped side dictionary for remote terms (see [`FOREIGN_BASE`]).
///
/// Interning is consistent within one run — the same remote term always maps
/// to the same synthetic id, so rows from two SERVICE groups still join on
/// equality.  A synthetic id can never equal a local id, which gives the
/// correct join semantics for free: a remote term absent from the local
/// store cannot match a locally-bound variable.  Local scans and FILTERs
/// over foreign-bound variables degrade safely (match nothing / see
/// unbound) because foreign ids resolve to no local term.
#[derive(Default)]
struct ForeignTerms {
    ids: RefCell<HashMap<Term, TermId>>,
    terms: RefCell<Vec<Term>>,
}

impl ForeignTerms {
    /// Map a remote term to an id: the local dictionary id when the store
    /// knows the term, a stable synthetic id otherwise.
    fn intern(&self, store: &Store, term: &Term) -> TermId {
        if let Some(id) = store.id_of(term) {
            return id;
        }
        if let Some(id) = self.ids.borrow().get(term) {
            return *id;
        }
        let mut terms = self.terms.borrow_mut();
        let id = TermId(FOREIGN_BASE + terms.len() as u32);
        terms.push(term.clone());
        self.ids.borrow_mut().insert(term.clone(), id);
        id
    }

    /// Decode an id through the local dictionary or the foreign table.
    fn resolve(&self, store: &Store, id: TermId) -> Option<Term> {
        if id.0 >= FOREIGN_BASE {
            self.terms
                .borrow()
                .get((id.0 - FOREIGN_BASE) as usize)
                .cloned()
        } else {
            store.term_of(id).cloned()
        }
    }

    /// Decode a projected id row, falling back to the plain local-only
    /// decoder when no foreign terms were interned this run (every
    /// non-federated query).
    fn decode_row(&self, store: &Store, variables: &[String], row: &IdRow) -> Binding {
        if self.terms.borrow().is_empty() {
            return decode_row(store, variables, row);
        }
        let mut binding = Binding::new();
        for (name, id) in variables.iter().zip(row) {
            if let Some(id) = id {
                if let Some(term) = self.resolve(store, *id) {
                    binding.set(name.clone(), term);
                }
            }
        }
        binding
    }
}

/// One remote solution, projected onto local variable slots and id-interned
/// (see [`ForeignTerms`]).
type ServiceRow = Vec<(usize, TermId)>;

/// Per-plan counters sizing the run-scoped caches: one slot per
/// constant-string text step, one per SERVICE group.
#[derive(Default)]
struct SlotCounters {
    text: usize,
    service: usize,
}

/// What one join step does.
#[derive(Debug, Clone)]
enum StepKind {
    /// An index scan of an id-compiled pattern.
    Scan(CompiledTriplePattern),
    /// A full-text probe (generative when its subject is unbound, a
    /// membership filter once it is bound).
    TextSearch {
        /// Index into the run's text-match cache.  The cache lives on the
        /// *execution*, not on a pipeline closure, so a constant-string
        /// search runs once per run even when OPTIONAL/UNION re-build the
        /// step's pipeline once per input row.
        cache_slot: usize,
        /// The search words when the query string is a constant literal —
        /// row-independent, so the match set is cacheable.  `None` when the
        /// string comes from a variable binding (resolved per row).
        constant_words: Option<Vec<String>>,
    },
    /// A constant term of the pattern is absent from the dictionary, so the
    /// pattern provably matches nothing in this store.
    NeverMatches,
}

/// One planned join step of a basic graph pattern: the operation, the AST
/// pattern it came from (for text resolution and labels), the planner's
/// estimate, and the filters pushed down to run right after it.
#[derive(Debug, Clone)]
struct PlanStep {
    kind: StepKind,
    ast: TriplePatternAst,
    estimate: f64,
    filters: Vec<Expression>,
    /// `true` on the plan's *driver* scan: the first step of the leftmost
    /// BGP, the only step whose input is always the single seed row.  A
    /// parallel run partitions exactly this scan into morsels; every other
    /// step runs unchanged inside each morsel.
    driver: bool,
}

/// A planned operator tree over id rows.
#[derive(Debug, Clone)]
enum PlanNode {
    /// A join-ordered basic graph pattern.  `pre_filters` are pushed-down
    /// filters none of whose variables are bound by this BGP's own steps
    /// (they only see input bindings, so they run before any fan-out).
    Bgp {
        pre_filters: Vec<Expression>,
        steps: Vec<PlanStep>,
    },
    Join(Box<PlanNode>, Box<PlanNode>),
    LeftJoin(Box<PlanNode>, Box<PlanNode>),
    Union(Box<PlanNode>, Box<PlanNode>),
    /// A residual filter that could not be pushed into a BGP.
    Filter(Box<PlanNode>, Expression),
    /// A `SERVICE <kg:name>` group: run `query` against another registered
    /// KG once per run (cached in the execution's service slot), then join
    /// the remote rows into the stream on the shared variable slots.
    Service {
        /// Registry name of the remote KG.
        kg: String,
        /// `SELECT *` over the group's pattern, executed remotely.
        query: Query,
        /// Remote variable name → local slot, for the merge join.
        binds: Vec<(String, usize)>,
        /// Index into the run's service-result cache.
        cache_slot: usize,
        /// The planner's (flat) cardinality guess for the remote rows.
        estimate: f64,
    },
}

/// A query compiled against one store: variables numbered, constants
/// resolved to dictionary ids, joins cost-ordered, filters pushed down, and
/// the result operators (`DISTINCT`/`OFFSET`/`LIMIT`) made explicit.
pub struct PhysicalPlan<'s> {
    store: &'s Store,
    vars: Arc<VarRegistry>,
    root: Arc<PlanNode>,
    /// The epoch snapshot this plan was compiled against, when the planner
    /// was built from one ([`Planner::for_shared_snapshot`]).  Owning the
    /// `Arc` is what lets a parallel run hand `'static` morsel jobs to the
    /// shared executor pool without copying the store.
    shared: Option<Arc<StoreSnapshot>>,
    /// Morsel-parallelism knobs; `None` plans always execute sequentially.
    parallel: Option<ParallelConfig>,
    projection: Vec<String>,
    is_ask: bool,
    distinct: bool,
    limit: Option<usize>,
    offset: usize,
    text_cap: usize,
    /// Number of text-search steps in the plan (sizes the per-run cache).
    text_slots: usize,
    /// Number of SERVICE groups in the plan (sizes the per-run cache).
    service_slots: usize,
    /// Resolver for SERVICE groups, inherited from the planner.
    services: Option<&'s dyn ServiceResolver>,
    /// Built lazily: the untraced execution paths never pay for rendering
    /// operator labels.
    summary: OnceLock<PlanSummary>,
}

impl fmt::Debug for PhysicalPlan<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PhysicalPlan")
            .field("root", &self.root)
            .field("projection", &self.projection)
            .field("is_ask", &self.is_ask)
            .field("distinct", &self.distinct)
            .field("limit", &self.limit)
            .field("offset", &self.offset)
            .field("has_services", &self.services.is_some())
            .finish_non_exhaustive()
    }
}

/// The output of one planned run: the results plus the work counters.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannedExecution {
    /// The query results.
    pub results: QueryResults,
    /// How much work the streaming pipeline did.
    pub metrics: ExecMetrics,
}

/// Compiles queries into [`PhysicalPlan`]s over one store, using the
/// store's cached [`PlannerStats`] for cardinality estimation.
pub struct Planner<'s> {
    store: &'s Store,
    stats: Arc<PlannerStats>,
    services: Option<&'s dyn ServiceResolver>,
    /// Set by [`Planner::for_shared_snapshot`]: the owned snapshot handle
    /// its plans carry for parallel execution.
    shared: Option<Arc<StoreSnapshot>>,
    parallel: Option<ParallelConfig>,
}

/// Convenience: plan and render the `EXPLAIN` summary of a query in one
/// call.
pub fn explain(store: &Store, query: &Query) -> PlanSummary {
    Planner::new(store).plan(query).summary().clone()
}

impl<'s> Planner<'s> {
    /// Create a planner over `store`.
    pub fn new(store: &'s Store) -> Self {
        Planner {
            stats: store.planner_stats(),
            store,
            services: None,
            shared: None,
            parallel: None,
        }
    }

    /// Install morsel-parallelism knobs: plans compiled afterwards may
    /// execute their driving scan as parallel morsels on the shared
    /// executor pool (see [`ParallelConfig`] for the DOP heuristic).
    ///
    /// Parallel execution additionally requires an *owned* snapshot handle
    /// — build the planner with [`Planner::for_shared_snapshot`]; on a
    /// plain borrowed [`Store`] the configuration is inert and every run
    /// stays sequential.
    pub fn with_parallelism(mut self, config: ParallelConfig) -> Self {
        self.parallel = Some(config);
        self
    }

    /// Install a resolver for `SERVICE <kg:name>` groups.
    ///
    /// Plans compiled afterwards can execute federated queries: each SERVICE
    /// group is sent to the resolver (typically `kgqan-endpoint`'s
    /// `EndpointRegistry`, which routes through the per-KG semantic cache)
    /// and the remote rows are joined back into the local pipeline.  Without
    /// a resolver, executing a plan with a SERVICE group fails at run time;
    /// use [`Planner::plan_checked`] to fail at plan time instead.
    pub fn with_services(mut self, services: &'s dyn ServiceResolver) -> Self {
        self.services = Some(services);
        self
    }

    /// Like [`Planner::plan`], but fail fast — at plan time — when the query
    /// contains a `SERVICE` group that cannot execute: either no resolver is
    /// installed, or a target KG is not one the resolver knows.  The
    /// unknown-KG error lists the available names.
    pub fn plan_checked(&self, query: &Query) -> Result<PhysicalPlan<'s>, SparqlError> {
        let targets = query.pattern.service_targets();
        if !targets.is_empty() {
            let Some(services) = self.services else {
                return Err(SparqlError::Service {
                    kg: targets[0].to_string(),
                    message: "no service resolver installed (use Planner::with_services)"
                        .to_string(),
                });
            };
            let available = services.service_names();
            for kg in targets {
                if !available.iter().any(|name| name == kg) {
                    return Err(SparqlError::UnknownService {
                        kg: kg.to_string(),
                        available: available.clone(),
                    });
                }
            }
        }
        Ok(self.plan(query))
    }

    /// Create a planner pinned to one epoch snapshot of a live store.
    ///
    /// Functionally this is `Planner::new(&snapshot)` (the snapshot derefs
    /// to its [`Store`]); it exists to make the epoch-consistency contract
    /// explicit: the returned planner's cardinality estimates, the plans it
    /// compiles, and the scans those plans run all observe the *same*
    /// epoch, no matter how many ingest batches are published concurrently.
    /// Snapshots carry pre-installed [`PlannerStats`], so construction does
    /// no stats compute.
    ///
    /// ```
    /// use kgqan_rdf::{IngestBatch, LiveStore, Store, Term, Triple};
    /// use kgqan_sparql::{parse_query, Planner};
    ///
    /// let live = LiveStore::new(Store::new());
    /// live.ingest(IngestBatch::from_iter([Triple::new(
    ///     Term::iri("http://e/s"),
    ///     Term::iri("http://e/p"),
    ///     Term::iri("http://e/o"),
    /// )]))
    /// .unwrap();
    ///
    /// let snapshot = live.snapshot();
    /// let query = parse_query("SELECT ?s WHERE { ?s <http://e/p> ?o }").unwrap();
    /// let planner = Planner::for_snapshot(&snapshot);
    /// assert_eq!(planner.plan(&query).execute().unwrap().results.rows().len(), 1);
    /// ```
    pub fn for_snapshot(snapshot: &'s kgqan_rdf::StoreSnapshot) -> Self {
        Planner::new(snapshot)
    }

    /// Like [`Planner::for_snapshot`], but from an *owned* snapshot handle,
    /// which additionally enables morsel-driven parallel execution (with
    /// [`ParallelConfig::default`]; tune or effectively disable it via
    /// [`Planner::with_parallelism`]).
    ///
    /// The plans this planner compiles keep a clone of the `Arc`, so a
    /// parallel run can ship `'static` morsel jobs to the shared executor
    /// pool — every worker reads the *same pinned epoch* the plan was
    /// costed against, however many ingest batches are published while the
    /// query runs.
    pub fn for_shared_snapshot(snapshot: &'s Arc<StoreSnapshot>) -> Self {
        Planner {
            stats: snapshot.planner_stats(),
            store: snapshot,
            services: None,
            shared: Some(Arc::clone(snapshot)),
            parallel: Some(ParallelConfig::default()),
        }
    }

    /// Compile a query into a physical plan.
    ///
    /// Planning never fails: constants missing from the dictionary become
    /// `never-matches` steps (scheduled first, so they empty the pipeline
    /// immediately) instead of errors.
    pub fn plan(&self, query: &Query) -> PhysicalPlan<'s> {
        let vars = VarRegistry::from_pattern(&query.pattern);
        let text_cap = effective_text_cap(query);
        let mut bound: HashSet<usize> = HashSet::new();
        let mut slots = SlotCounters::default();
        let mut root = self.compile(&query.pattern, &vars, &mut bound, text_cap, &mut slots);
        mark_driver(&mut root);

        let (projection, is_ask, distinct) = match &query.form {
            QueryForm::Ask => (Vec::new(), true, false),
            QueryForm::Select {
                variables,
                distinct,
            } => {
                let projected = if variables.is_empty() {
                    query.pattern.variables()
                } else {
                    variables.clone()
                };
                (projected, false, *distinct)
            }
        };

        PhysicalPlan {
            store: self.store,
            vars: Arc::new(vars),
            root: Arc::new(root),
            shared: self.shared.clone(),
            parallel: self.parallel,
            projection,
            is_ask,
            distinct,
            limit: query.limit,
            offset: query.offset.unwrap_or(0),
            text_cap,
            text_slots: slots.text,
            service_slots: slots.service,
            services: self.services,
            summary: OnceLock::new(),
        }
    }

    /// Recursively compile a graph pattern, threading the set of variable
    /// slots that may already be bound by the time rows reach this node
    /// (used for cardinality estimation and filter pushdown).
    fn compile(
        &self,
        pattern: &GraphPattern,
        vars: &VarRegistry,
        bound: &mut HashSet<usize>,
        text_cap: usize,
        slots: &mut SlotCounters,
    ) -> PlanNode {
        match pattern {
            GraphPattern::Bgp(tps) => self.plan_bgp(tps, vars, bound, text_cap, slots),
            GraphPattern::Join(a, b) => {
                let left = self.compile(a, vars, bound, text_cap, slots);
                let right = self.compile(b, vars, bound, text_cap, slots);
                PlanNode::Join(Box::new(left), Box::new(right))
            }
            GraphPattern::Optional(a, b) => {
                let left = self.compile(a, vars, bound, text_cap, slots);
                let right = self.compile(b, vars, bound, text_cap, slots);
                PlanNode::LeftJoin(Box::new(left), Box::new(right))
            }
            GraphPattern::Union(a, b) => {
                let mut bound_a = bound.clone();
                let left = self.compile(a, vars, &mut bound_a, text_cap, slots);
                let mut bound_b = bound.clone();
                let right = self.compile(b, vars, &mut bound_b, text_cap, slots);
                bound.extend(bound_a);
                bound.extend(bound_b);
                PlanNode::Union(Box::new(left), Box::new(right))
            }
            GraphPattern::Filter(inner, expr) => {
                let mut node = self.compile(inner, vars, bound, text_cap, slots);
                match push_filter(&mut node, expr, vars) {
                    true => node,
                    false => PlanNode::Filter(Box::new(node), expr.clone()),
                }
            }
            GraphPattern::Service { kg, pattern } => {
                // The group executes remotely as `SELECT *`; every variable
                // it mentions is bound (or checked) by the merge join.
                let query = Query {
                    form: QueryForm::Select {
                        variables: Vec::new(),
                        distinct: false,
                    },
                    pattern: (**pattern).clone(),
                    limit: None,
                    offset: None,
                };
                let binds: Vec<(String, usize)> = pattern
                    .variables()
                    .into_iter()
                    .filter_map(|v| vars.id_of(&v).map(|slot| (v, slot)))
                    .collect();
                bound.extend(binds.iter().map(|(_, slot)| *slot));
                let cache_slot = slots.service;
                slots.service += 1;
                PlanNode::Service {
                    kg: kg.clone(),
                    query,
                    binds,
                    cache_slot,
                    estimate: SERVICE_ESTIMATE,
                }
            }
        }
    }

    /// Greedily join-order one basic graph pattern.
    fn plan_bgp(
        &self,
        tps: &[TriplePatternAst],
        vars: &VarRegistry,
        bound: &mut HashSet<usize>,
        text_cap: usize,
        slots: &mut SlotCounters,
    ) -> PlanNode {
        struct Candidate {
            kind: StepKind,
            ast: TriplePatternAst,
            /// Variable slots this pattern mentions.
            var_slots: Vec<usize>,
            /// Variable slots this pattern binds when it runs.
            binds: Vec<usize>,
        }

        let mut remaining: Vec<Candidate> = tps
            .iter()
            .map(|tp| {
                let var_slots: Vec<usize> = tp
                    .variables()
                    .iter()
                    .filter_map(|v| vars.id_of(v))
                    .collect();
                if is_text_search_pattern(tp) {
                    // A text probe binds its subject variable; the object is
                    // the query string, the predicate the magic IRI.
                    let binds = tp
                        .subject
                        .as_var()
                        .and_then(|v| vars.id_of(v))
                        .into_iter()
                        .collect();
                    let cache_slot = slots.text;
                    slots.text += 1;
                    Candidate {
                        kind: StepKind::TextSearch {
                            cache_slot,
                            constant_words: constant_text_words(tp),
                        },
                        ast: tp.clone(),
                        var_slots,
                        binds,
                    }
                } else {
                    match compile_triple_pattern(self.store, vars, tp) {
                        Some(compiled) => Candidate {
                            kind: StepKind::Scan(compiled),
                            ast: tp.clone(),
                            binds: var_slots.clone(),
                            var_slots,
                        },
                        None => Candidate {
                            kind: StepKind::NeverMatches,
                            ast: tp.clone(),
                            var_slots,
                            binds: Vec::new(),
                        },
                    }
                }
            })
            .collect();

        let mut steps = Vec::with_capacity(remaining.len());
        while !remaining.is_empty() {
            // Prefer patterns connected to what is already joined (shared
            // variable or no variables at all); fall back to every pattern
            // when nothing connects — the cartesian product is then forced
            // by the query, and we at least start from the cheapest side.
            let connected = |c: &Candidate| {
                c.var_slots.is_empty() || c.var_slots.iter().any(|v| bound.contains(v))
            };
            let any_connected = !steps.is_empty() && remaining.iter().any(connected);
            let pick = remaining
                .iter()
                .enumerate()
                .filter(|(_, c)| !any_connected || connected(c))
                .map(|(i, c)| (i, self.estimate(&c.ast, &c.kind, bound, vars, text_cap)))
                .min_by(|(_, a), (_, b)| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal))
                .expect("remaining is non-empty");
            let (index, estimate) = pick;
            let candidate = remaining.swap_remove(index);
            bound.extend(candidate.binds.iter().copied());
            steps.push(PlanStep {
                kind: candidate.kind,
                ast: candidate.ast,
                estimate,
                filters: Vec::new(),
                driver: false,
            });
        }
        PlanNode::Bgp {
            pre_filters: Vec::new(),
            steps,
        }
    }

    /// Estimate how many rows one step yields per input row, given which
    /// variable slots are already bound.
    fn estimate(
        &self,
        ast: &TriplePatternAst,
        kind: &StepKind,
        bound: &HashSet<usize>,
        vars: &VarRegistry,
        text_cap: usize,
    ) -> f64 {
        match kind {
            StepKind::NeverMatches => 0.0,
            StepKind::TextSearch { .. } => {
                let subject_bound = match &ast.subject {
                    VarOrTerm::Var(v) => vars.id_of(v).is_some_and(|slot| bound.contains(&slot)),
                    VarOrTerm::Term(_) => true,
                };
                if subject_bound {
                    // Membership test against the match set: ~1 row out per
                    // row in.
                    return 1.0;
                }
                match &ast.object {
                    VarOrTerm::Term(Term::Literal(lit)) => {
                        let words = crate::eval::parse_text_query(&lit.lexical);
                        let refs: Vec<&str> = words.iter().map(String::as_str).collect();
                        self.store.text_index().estimate_any(&refs).min(text_cap) as f64
                    }
                    // Query string only known at run time: assume the cap.
                    _ => text_cap.min(self.store.text_index().num_literals()) as f64,
                }
            }
            StepKind::Scan(tp) => {
                let const_of = |slot: Slot| match slot {
                    Slot::Const(id) => Some(id),
                    Slot::Var(_) => None,
                };
                let base = self.store.scan_count(EncodedTriplePattern::new(
                    const_of(tp.subject),
                    const_of(tp.predicate),
                    const_of(tp.object),
                )) as f64;
                if base == 0.0 {
                    return 0.0;
                }
                // Positions held by an already-joined variable divide the
                // constant-match count by the relevant distinct count: with
                // a constant predicate that is the predicate's own distinct
                // subject/object count (average out-/in-degree), otherwise
                // the graph-wide distinct counts.
                let pred_card = match tp.predicate {
                    Slot::Const(p) => self.stats.predicate(p).copied(),
                    Slot::Var(_) => None,
                };
                let mut est = base;
                if let Slot::Var(v) = tp.subject {
                    if bound.contains(&v) {
                        let distinct = pred_card
                            .map(|c| c.distinct_subjects)
                            .unwrap_or(self.stats.distinct_subjects);
                        est /= distinct.max(1) as f64;
                    }
                }
                if let Slot::Var(v) = tp.predicate {
                    if bound.contains(&v) {
                        est /= self.stats.distinct_predicates.max(1) as f64;
                    }
                }
                if let Slot::Var(v) = tp.object {
                    if bound.contains(&v) {
                        let distinct = pred_card
                            .map(|c| c.distinct_objects)
                            .unwrap_or(self.stats.distinct_objects);
                        est /= distinct.max(1) as f64;
                    }
                }
                est
            }
        }
    }
}

/// Try to push a filter into a BGP node: attach it after the last step that
/// binds any of the filter's variables, or to the pre-filter list when the
/// BGP's steps bind none of them (the filter then only depends on input
/// bindings, which no step can change).  Returns `false` if the node is not
/// a BGP — the caller keeps the filter as a residual operator.
fn push_filter(node: &mut PlanNode, expr: &Expression, vars: &VarRegistry) -> bool {
    let PlanNode::Bgp {
        pre_filters, steps, ..
    } = node
    else {
        return false;
    };
    let filter_slots: Vec<usize> = expr
        .variables()
        .iter()
        .filter_map(|v| vars.id_of(v))
        .collect();
    let step_binds = |step: &PlanStep| -> Vec<usize> {
        match &step.kind {
            StepKind::Scan(_) => step
                .ast
                .variables()
                .iter()
                .filter_map(|v| vars.id_of(v))
                .collect(),
            StepKind::TextSearch { .. } => step
                .ast
                .subject
                .as_var()
                .and_then(|v| vars.id_of(v))
                .into_iter()
                .collect(),
            StepKind::NeverMatches => Vec::new(),
        }
    };
    let position = steps
        .iter()
        .enumerate()
        .filter(|(_, step)| step_binds(step).iter().any(|v| filter_slots.contains(v)))
        .map(|(i, _)| i)
        .next_back();
    match position {
        Some(i) => steps[i].filters.push(expr.clone()),
        None => pre_filters.push(expr.clone()),
    }
    true
}

/// Mark the plan's driver scan (see [`PlanStep::driver`]): the first step
/// of the leftmost BGP, reached by walking left through joins and filters.
/// Union branches and SERVICE groups re-evaluate per input row, so nothing
/// inside them can drive a partitioned scan.
fn mark_driver(node: &mut PlanNode) {
    match node {
        PlanNode::Bgp { steps, .. } => {
            if let Some(step) = steps.first_mut() {
                if matches!(step.kind, StepKind::Scan(_)) {
                    step.driver = true;
                }
            }
        }
        PlanNode::Join(a, _) | PlanNode::LeftJoin(a, _) => mark_driver(a),
        PlanNode::Filter(inner, _) => mark_driver(inner),
        PlanNode::Union(..) | PlanNode::Service { .. } => {}
    }
}

/// The marked driver step, if the plan has one (mirrors [`mark_driver`]).
fn find_driver(node: &PlanNode) -> Option<&PlanStep> {
    match node {
        PlanNode::Bgp { steps, .. } => steps.first().filter(|step| step.driver),
        PlanNode::Join(a, _) | PlanNode::LeftJoin(a, _) => find_driver(a),
        PlanNode::Filter(inner, _) => find_driver(inner),
        PlanNode::Union(..) | PlanNode::Service { .. } => None,
    }
}

/// Does any node of the tree call out to a remote KG?  SERVICE resolvers
/// are borrowed (`&dyn`) and their term interner is single-threaded, so
/// federated plans always take the sequential path.
fn plan_has_service(node: &PlanNode) -> bool {
    match node {
        PlanNode::Bgp { .. } => false,
        PlanNode::Join(a, b) | PlanNode::LeftJoin(a, b) | PlanNode::Union(a, b) => {
            plan_has_service(a) || plan_has_service(b)
        }
        PlanNode::Filter(inner, _) => plan_has_service(inner),
        PlanNode::Service { .. } => true,
    }
}

// ---------------------------------------------------------------------------
// Execution: a lazy iterator pipeline over id rows.
// ---------------------------------------------------------------------------

/// The item flowing through the pipeline: a row, or an evaluation error to
/// propagate to the caller.
type RowResult = Result<IdRow, SparqlError>;

/// A boxed lazy row stream.
type RowIter<'a> = Box<dyn Iterator<Item = RowResult> + 'a>;

/// Shared per-run context, `Copy` so the iterator closures can capture it by
/// value.
#[derive(Clone, Copy)]
struct ExecCtx<'a> {
    store: &'a Store,
    vars: &'a VarRegistry,
    text_cap: usize,
    scanned: &'a Cell<u64>,
    /// One lazily-filled match-set slot per constant-string text step of
    /// the plan, shared across the whole run.
    text_cache: &'a [OnceCell<TextMatches>],
    /// Resolver for SERVICE groups; `None` outside federated plans.
    services: Option<&'a dyn ServiceResolver>,
    /// One lazily-filled remote-result slot per SERVICE group of the plan:
    /// the remote query runs once per run, however many input rows the
    /// pipeline pushes through the join.
    service_cache: &'a [OnceCell<Result<Vec<ServiceRow>, SparqlError>>],
    /// Run-scoped side dictionary for remote terms.
    foreign: &'a ForeignTerms,
    /// When set, this execution is one morsel of a parallel run: the
    /// driver scan is clipped to this key range, every other operator runs
    /// unchanged.  `None` on the sequential path.
    morsel: Option<PartitionRange>,
}

impl<'a> ExecCtx<'a> {
    fn eval_node(self, node: &'a PlanNode, input: RowIter<'a>) -> RowIter<'a> {
        match node {
            PlanNode::Bgp {
                pre_filters, steps, ..
            } => {
                let mut current = input;
                if !pre_filters.is_empty() {
                    current = self.filter_rows(current, pre_filters);
                }
                for step in steps {
                    current = self.eval_step(step, current);
                }
                current
            }
            PlanNode::Join(a, b) => {
                let left = self.eval_node(a, input);
                self.eval_node(b, left)
            }
            // The right side runs once per left row, so constructing a fresh
            // boxed iterator chain each time would dominate; a BGP right
            // side (every KGQAn candidate's OPTIONAL rdf:type clause) is
            // evaluated with direct loops instead.
            PlanNode::LeftJoin(a, b) => {
                let left = self.eval_node(a, input);
                Box::new(left.flat_map(move |res| -> RowIter<'a> {
                    let row = match res {
                        Ok(row) => row,
                        Err(e) => return Box::new(std::iter::once(Err(e))),
                    };
                    if let PlanNode::Bgp { pre_filters, steps } = &**b {
                        return match self.eval_bgp_rows(pre_filters, steps, &row) {
                            Err(e) => Box::new(std::iter::once(Err(e))),
                            Ok(extended) if extended.is_empty() => {
                                Box::new(std::iter::once(Ok(row)))
                            }
                            Ok(extended) => Box::new(extended.into_iter().map(Ok)),
                        };
                    }
                    let extended = self.eval_node(b, Box::new(std::iter::once(Ok(row.clone()))));
                    let mut peeked = extended.peekable();
                    if peeked.peek().is_none() {
                        Box::new(std::iter::once(Ok(row)))
                    } else {
                        Box::new(peeked)
                    }
                }))
            }
            PlanNode::Union(a, b) => Box::new(input.flat_map(move |res| -> RowIter<'a> {
                let row = match res {
                    Ok(row) => row,
                    Err(e) => return Box::new(std::iter::once(Err(e))),
                };
                let left = self.eval_node(a, Box::new(std::iter::once(Ok(row.clone()))));
                let right = self.eval_node(b, Box::new(std::iter::once(Ok(row))));
                Box::new(left.chain(right))
            })),
            PlanNode::Filter(inner, expr) => {
                let rows = self.eval_node(inner, input);
                self.filter_rows(rows, std::slice::from_ref(expr))
            }
            PlanNode::Service {
                kg,
                query,
                binds,
                cache_slot,
                ..
            } => {
                let cache_slot = *cache_slot;
                Box::new(input.flat_map(move |res| -> RowIter<'a> {
                    let row = match res {
                        Ok(row) => row,
                        Err(e) => return Box::new(std::iter::once(Err(e))),
                    };
                    let remote = self.service_cache[cache_slot]
                        .get_or_init(|| self.fetch_service(kg, query, binds));
                    match remote {
                        Err(e) => Box::new(std::iter::once(Err(e.clone()))),
                        Ok(remote_rows) => {
                            let joined: Vec<RowResult> = remote_rows
                                .iter()
                                .filter_map(|ext| merge_service_row(&row, ext))
                                .map(Ok)
                                .collect();
                            Box::new(joined.into_iter())
                        }
                    }
                }))
            }
        }
    }

    /// Run one SERVICE group's query against the remote KG and project each
    /// remote solution onto local variable slots, id-interned through the
    /// run's [`ForeignTerms`] table.  Remote rows count as scanned work.
    fn fetch_service(
        self,
        kg: &str,
        query: &Query,
        binds: &[(String, usize)],
    ) -> Result<Vec<ServiceRow>, SparqlError> {
        let Some(services) = self.services else {
            return Err(SparqlError::Service {
                kg: kg.to_string(),
                message: "no service resolver installed (plan with Planner::with_services)"
                    .to_string(),
            });
        };
        let results = services.execute_service(kg, query)?;
        let rows = results.rows();
        self.scanned.set(self.scanned.get() + rows.len() as u64);
        Ok(rows
            .iter()
            .map(|binding| {
                binds
                    .iter()
                    .filter_map(|(var, slot)| {
                        binding
                            .get(var)
                            .map(|term| (*slot, self.foreign.intern(self.store, term)))
                    })
                    .collect()
            })
            .collect())
    }

    fn eval_step(self, step: &'a PlanStep, input: RowIter<'a>) -> RowIter<'a> {
        let extended: RowIter<'a> = match &step.kind {
            // A constant absent from the dictionary matches nothing,
            // whatever the input.
            StepKind::NeverMatches => Box::new(std::iter::empty()),
            StepKind::Scan(tp) => {
                let tp = *tp;
                let clip = if step.driver { self.morsel } else { None };
                Box::new(input.flat_map(move |res| -> RowIter<'a> {
                    match res {
                        Err(e) => Box::new(std::iter::once(Err(e))),
                        Ok(row) => Box::new(self.scan_extensions(tp, clip, row).map(Ok)),
                    }
                }))
            }
            StepKind::TextSearch {
                cache_slot,
                constant_words,
            } => {
                let ast = &step.ast;
                let cache_slot = *cache_slot;
                // A constant query string is row-independent: run the search
                // once per *run* and reuse the match set — the cache lives
                // on the execution, so OPTIONAL/UNION re-building this
                // pipeline per input row still share it.  (The planner costs
                // a bound-subject text step at ~1 row on this assumption.)
                Box::new(input.flat_map(move |res| -> RowIter<'a> {
                    let row = match res {
                        Ok(row) => row,
                        Err(e) => return Box::new(std::iter::once(Err(e))),
                    };
                    if let Some(words) = constant_words {
                        let matches =
                            self.text_cache[cache_slot].get_or_init(|| self.search_text(words));
                        return Box::new(
                            self.text_row_extensions(ast, row, matches)
                                .into_iter()
                                .map(Ok),
                        );
                    }
                    match text_query_words(self.store, self.vars, ast, &row) {
                        Err(e) => Box::new(std::iter::once(Err(e))),
                        Ok(words) => {
                            let matches = self.search_text(&words);
                            Box::new(
                                self.text_row_extensions(ast, row, &matches)
                                    .into_iter()
                                    .map(Ok),
                            )
                        }
                    }
                }))
            }
        };
        if step.filters.is_empty() {
            extended
        } else {
            self.filter_rows(extended, &step.filters)
        }
    }

    /// All extensions of one row by one compiled scan pattern — the
    /// innermost join loop, shared by the streaming and materialising
    /// paths.
    fn scan_extensions(
        self,
        tp: CompiledTriplePattern,
        clip: Option<PartitionRange>,
        row: IdRow,
    ) -> impl Iterator<Item = IdRow> + 'a {
        let resolve = |slot: Slot| -> Option<TermId> {
            match slot {
                Slot::Const(id) => Some(id),
                Slot::Var(v) => row[v],
            }
        };
        let pattern = EncodedTriplePattern::new(
            resolve(tp.subject),
            resolve(tp.predicate),
            resolve(tp.object),
        );
        let scan = match clip {
            // The driver scan of one morsel: same pattern, same ordering,
            // restricted to the morsel's key range.
            Some(range) => MorselScan::Clipped(self.store.scan_within(pattern, range)),
            None => MorselScan::Full(self.store.scan(pattern)),
        };
        scan.filter_map(move |triple| {
            self.scanned.set(self.scanned.get() + 1);
            extend_row(&row, tp, triple)
        })
    }

    /// Evaluate a BGP's planned steps for one input row with plain loops,
    /// materialising the result rows.  Used where the caller materialises
    /// anyway (the per-left-row right side of a left join): it skips the
    /// per-row construction of a boxed iterator chain.
    fn eval_bgp_rows(
        self,
        pre_filters: &[Expression],
        steps: &[PlanStep],
        row: &IdRow,
    ) -> Result<Vec<IdRow>, SparqlError> {
        for expr in pre_filters {
            let keep = eval_expression(self.store, self.vars, expr, row)?
                .map(term_truthiness)
                .unwrap_or(false);
            if !keep {
                return Ok(Vec::new());
            }
        }
        let mut current = vec![row.clone()];
        for step in steps {
            let mut next = Vec::new();
            match &step.kind {
                StepKind::NeverMatches => {}
                StepKind::Scan(tp) => {
                    for row in &current {
                        // Never the driver: this path only serves the right
                        // side of a left join, which `mark_driver` skips.
                        next.extend(self.scan_extensions(*tp, None, row.clone()));
                    }
                }
                StepKind::TextSearch {
                    cache_slot,
                    constant_words,
                } => {
                    for row in current {
                        match constant_words {
                            Some(words) => {
                                let matches = self.text_cache[*cache_slot]
                                    .get_or_init(|| self.search_text(words));
                                next.extend(self.text_row_extensions(&step.ast, row, matches));
                            }
                            None => {
                                let words =
                                    text_query_words(self.store, self.vars, &step.ast, &row)?;
                                let matches = self.search_text(&words);
                                next.extend(self.text_row_extensions(&step.ast, row, &matches));
                            }
                        }
                    }
                }
            }
            for expr in &step.filters {
                let mut filtered = Vec::with_capacity(next.len());
                for row in next {
                    if eval_expression(self.store, self.vars, expr, &row)?
                        .map(term_truthiness)
                        .unwrap_or(false)
                    {
                        filtered.push(row);
                    }
                }
                next = filtered;
            }
            current = next;
            if current.is_empty() {
                break;
            }
        }
        Ok(current)
    }

    /// Run one text search, reporting the matches it inspected to the scan
    /// counter and building the membership set used for bound subjects.
    fn search_text(self, words: &[String]) -> TextMatches {
        let word_refs: Vec<&str> = words.iter().map(String::as_str).collect();
        let matches = self
            .store
            .text_index()
            .search_any(&word_refs, self.text_cap);
        self.scanned.set(self.scanned.get() + matches.len() as u64);
        let literals = matches.iter().map(|m| m.literal).collect();
        TextMatches { matches, literals }
    }

    /// All extensions of one row by one text-search pattern over an
    /// already-computed match set (mirrors the naive evaluator's
    /// `extend_with_text_search`).  An already-bound subject is a set
    /// membership test, not a walk of the match list.
    fn text_row_extensions(
        self,
        tp: &TriplePatternAst,
        row: IdRow,
        matches: &TextMatches,
    ) -> Vec<IdRow> {
        let mut out = Vec::new();
        match &tp.subject {
            VarOrTerm::Var(var) => {
                let slot = self
                    .vars
                    .id_of(var)
                    .expect("pattern variables are all registered");
                match row[slot] {
                    Some(existing) => {
                        if matches.literals.contains(&existing) {
                            out.push(row);
                        }
                    }
                    None => {
                        for m in &matches.matches {
                            let mut extended = row.clone();
                            extended[slot] = Some(m.literal);
                            out.push(extended);
                        }
                    }
                }
            }
            VarOrTerm::Term(term) => {
                // Bound subject: keep the row iff that literal matches.
                let keeps = self
                    .store
                    .id_of(term)
                    .is_some_and(|id| matches.literals.contains(&id));
                if keeps {
                    out.push(row);
                }
            }
        }
        out
    }

    fn filter_rows(self, input: RowIter<'a>, exprs: &'a [Expression]) -> RowIter<'a> {
        Box::new(input.filter_map(move |res| -> Option<RowResult> {
            let row = match res {
                Ok(row) => row,
                Err(e) => return Some(Err(e)),
            };
            for expr in exprs {
                match eval_expression(self.store, self.vars, expr, &row) {
                    Err(e) => return Some(Err(e)),
                    Ok(value) => {
                        if !value.map(term_truthiness).unwrap_or(false) {
                            return None;
                        }
                    }
                }
            }
            Some(Ok(row))
        }))
    }
}

/// The match set of one text-search step: the ranked matches (for
/// generatively binding an unbound subject) plus a membership set (for
/// subjects already bound by an earlier step).
struct TextMatches {
    matches: Vec<TextMatch>,
    literals: HashSet<TermId>,
}

/// The two shapes of the innermost scan loop: a full index scan, or one
/// morsel of a partitioned driver scan.  An enum (rather than a boxed
/// iterator) keeps the sequential fast path free of virtual dispatch.
enum MorselScan<A, B> {
    Full(A),
    Clipped(B),
}

impl<T, A, B> Iterator for MorselScan<A, B>
where
    A: Iterator<Item = T>,
    B: Iterator<Item = T>,
{
    type Item = T;

    fn next(&mut self) -> Option<T> {
        match self {
            MorselScan::Full(scan) => scan.next(),
            MorselScan::Clipped(scan) => scan.next(),
        }
    }
}

/// The search words of a text pattern whose query string is a constant
/// literal — row-independent, so the search can run once per step.
/// `None` when the string comes from a variable binding (resolved per row).
fn constant_text_words(tp: &TriplePatternAst) -> Option<Vec<String>> {
    match &tp.object {
        VarOrTerm::Term(Term::Literal(lit)) => Some(parse_text_query(&lit.lexical)),
        _ => None,
    }
}

/// Extend one id row with one matched triple, or `None` when a repeated
/// variable matched two different ids.
fn extend_row(row: &IdRow, tp: CompiledTriplePattern, triple: EncodedTriple) -> Option<IdRow> {
    let mut extended = row.clone();
    for (slot, id) in [
        (tp.subject, triple.subject),
        (tp.predicate, triple.predicate),
        (tp.object, triple.object),
    ] {
        if let Slot::Var(v) = slot {
            match extended[v] {
                Some(existing) if existing != id => return None,
                _ => extended[v] = Some(id),
            }
        }
    }
    Some(extended)
}

/// Merge one remote SERVICE row into an input row, or `None` when a shared
/// variable is bound to a different term on the two sides (the rows do not
/// join).
fn merge_service_row(row: &IdRow, ext: &[(usize, TermId)]) -> Option<IdRow> {
    let mut extended = row.clone();
    for &(slot, id) in ext {
        match extended[slot] {
            Some(existing) if existing != id => return None,
            _ => extended[slot] = Some(id),
        }
    }
    Some(extended)
}

impl<'s> PhysicalPlan<'s> {
    /// The `EXPLAIN` summary of this plan (rendered on first call).
    pub fn summary(&self) -> &PlanSummary {
        self.summary.get_or_init(|| self.build_summary())
    }

    /// Run the plan to completion, streaming rows through the operator
    /// pipeline.  `LIMIT`/`OFFSET`/`DISTINCT` (and ASK's one-row need) stop
    /// the scans as soon as the output is decided.
    pub fn execute(&self) -> Result<PlannedExecution, SparqlError> {
        self.execute_with(ExecOptions::default())
    }

    /// [`PhysicalPlan::execute`] with per-run knobs (currently: a
    /// deadline).  When the plan is parallel-eligible (see
    /// [`ParallelConfig`]) the driving scan runs as morsels on the shared
    /// [`ExecutorPool`]; results are byte-identical to the sequential path
    /// whatever the worker interleaving, because morsel outputs are merged
    /// in partition order before `DISTINCT`/`OFFSET`/`LIMIT` are applied.
    pub fn execute_with(&self, opts: ExecOptions) -> Result<PlannedExecution, SparqlError> {
        if let Some(decision) = self.parallel_decision() {
            return self.execute_parallel(decision, opts);
        }
        self.execute_sequential(opts)
    }

    /// The sequential (single-thread, fully streaming) execution path.
    fn execute_sequential(&self, opts: ExecOptions) -> Result<PlannedExecution, SparqlError> {
        let scanned = Cell::new(0u64);
        let text_cache: Vec<OnceCell<TextMatches>> =
            (0..self.text_slots).map(|_| OnceCell::new()).collect();
        let service_cache: Vec<OnceCell<Result<Vec<ServiceRow>, SparqlError>>> =
            (0..self.service_slots).map(|_| OnceCell::new()).collect();
        let foreign = ForeignTerms::default();
        let ctx = ExecCtx {
            store: self.store,
            vars: &self.vars,
            text_cap: self.text_cap,
            scanned: &scanned,
            text_cache: &text_cache,
            services: self.services,
            service_cache: &service_cache,
            foreign: &foreign,
            morsel: None,
        };
        let seed: IdRow = vec![None; self.vars.len()];
        let mut rows = ctx.eval_node(&self.root, Box::new(std::iter::once(Ok(seed))));

        if self.is_ask {
            let verdict = match rows.next() {
                None => false,
                Some(Err(e)) => return Err(e),
                Some(Ok(_)) => true,
            };
            drop(rows);
            return Ok(PlannedExecution {
                results: QueryResults::Boolean(verdict),
                metrics: ExecMetrics {
                    rows_scanned: scanned.get(),
                    rows_emitted: u64::from(verdict),
                    ..ExecMetrics::default()
                },
            });
        }

        let slots: Vec<Option<usize>> =
            self.projection.iter().map(|v| self.vars.id_of(v)).collect();
        let mut seen = self.distinct.then(HashSet::new);
        let mut to_skip = self.offset;
        let mut id_rows: Vec<IdRow> = Vec::new();
        let mut deadline_exceeded = false;
        let mut pulled: u64 = 0;
        loop {
            if self.limit.is_some_and(|limit| id_rows.len() >= limit) {
                break;
            }
            // Deadline checks cost a clock read, so amortize them; the
            // default (deadline-free) path pays only a branch.
            if let Some(deadline) = opts.deadline {
                if pulled.is_multiple_of(256) && Instant::now() >= deadline {
                    deadline_exceeded = true;
                    break;
                }
                pulled += 1;
            }
            let Some(res) = rows.next() else {
                break;
            };
            let row = res?;
            let projected: IdRow = slots.iter().map(|slot| slot.and_then(|i| row[i])).collect();
            if let Some(seen) = &mut seen {
                if !seen.insert(projected.clone()) {
                    continue;
                }
            }
            if to_skip > 0 {
                to_skip -= 1;
                continue;
            }
            id_rows.push(projected);
        }
        drop(rows);

        let bindings: Vec<Binding> = id_rows
            .iter()
            .map(|row| foreign.decode_row(self.store, &self.projection, row))
            .collect();
        let metrics = ExecMetrics {
            rows_scanned: scanned.get(),
            rows_emitted: bindings.len() as u64,
            deadline_exceeded,
            parallel: None,
        };
        Ok(PlannedExecution {
            results: QueryResults::Solutions(ResultSet::new(self.projection.clone(), bindings)),
            metrics,
        })
    }

    /// Decide whether (and how) this plan runs in parallel.  Returns `None`
    /// — the sequential fast path — unless *all* of the following hold: a
    /// parallelism config and an owned snapshot are installed, the query is
    /// not an ASK and touches no SERVICE group, a driver scan exists, its
    /// cardinality estimate asks for at least two workers, any
    /// `LIMIT`/`OFFSET` page is big enough to be worth full scans, and the
    /// driver actually splits into more than one partition.
    fn parallel_decision(&self) -> Option<ParallelDecision> {
        let config = self.parallel?;
        self.shared.as_ref()?;
        if self.is_ask || config.max_dop < 2 || plan_has_service(&self.root) {
            return None;
        }
        let driver = find_driver(&self.root)?;
        let StepKind::Scan(tp) = &driver.kind else {
            return None;
        };
        if let Some(limit) = self.limit {
            if self.offset + limit < config.min_page_rows {
                return None;
            }
        }
        let dop =
            ((driver.estimate / config.rows_per_worker.max(1.0)) as usize).clamp(1, config.max_dop);
        if dop < 2 {
            return None;
        }
        // The driver's input is always the single all-unbound seed row, so
        // its runtime pattern is exactly its compiled constants.
        let const_of = |slot: Slot| match slot {
            Slot::Const(id) => Some(id),
            Slot::Var(_) => None,
        };
        let pattern = EncodedTriplePattern::new(
            const_of(tp.subject),
            const_of(tp.predicate),
            const_of(tp.object),
        );
        let ranges = self
            .store
            .scan_partitions(pattern, dop * config.morsels_per_worker.max(1));
        if ranges.len() < 2 {
            return None;
        }
        Some(ParallelDecision { dop, ranges })
    }

    /// The morsel-parallel execution path.
    ///
    /// The coordinating thread submits up to `dop - 1` helper jobs to the
    /// shared pool and then drains morsels itself, so the run makes
    /// progress even when the pool has no free slot (saturation degrades
    /// parallelism, never correctness).  Each worker claims morsels from a
    /// shared counter — partition order — and materialises its morsel's
    /// projected rows; the coordinator concatenates the outputs *in
    /// partition order* and only then applies `DISTINCT`/`OFFSET`/`LIMIT`,
    /// which is what makes the result byte-identical to the sequential
    /// path regardless of thread interleaving.
    fn execute_parallel(
        &self,
        decision: ParallelDecision,
        opts: ExecOptions,
    ) -> Result<PlannedExecution, SparqlError> {
        let snapshot = Arc::clone(self.shared.as_ref().expect("checked by parallel_decision"));
        let morsels = decision.ranges.len();
        let state = Arc::new(MorselRun {
            snapshot,
            root: Arc::clone(&self.root),
            vars: Arc::clone(&self.vars),
            text_cap: self.text_cap,
            text_slots: self.text_slots,
            slots: self.projection.iter().map(|v| self.vars.id_of(v)).collect(),
            distinct: self.distinct,
            cap: self.limit.map(|limit| self.offset.saturating_add(limit)),
            ranges: decision.ranges,
            next: AtomicUsize::new(0),
            outputs: (0..morsels).map(|_| Mutex::new(None)).collect(),
            deadline: opts.deadline,
            expired: AtomicBool::new(false),
        });
        exec::record_parallel_query();

        let pool = ExecutorPool::shared();
        let mut tickets = Vec::with_capacity(decision.dop - 1);
        for _ in 1..decision.dop {
            let job = Arc::clone(&state);
            match pool.try_submit(move || job.drain()) {
                Ok(ticket) => tickets.push(ticket),
                // Pool saturated or shutting down: run with fewer helpers.
                Err(_) => break,
            }
        }
        let mut rows_scanned_per_worker = vec![state.drain()];
        for ticket in tickets {
            // `None` = the helper panicked; its claimed morsel is refilled
            // below, so the run still completes.
            if let Some(scanned) = ticket.wait() {
                rows_scanned_per_worker.push(scanned);
            }
        }
        // Refill any hole that is not a deadline hole (a panicked helper's
        // claimed-but-unfinished morsel) on the coordinating thread.
        if !state.expired.load(Ordering::Relaxed) {
            for index in 0..morsels {
                let missing = state.lock_output(index).is_none();
                if missing {
                    let (result, scanned) = state.run_morsel(index);
                    rows_scanned_per_worker[0] += scanned;
                    *state.lock_output(index) = Some(result);
                }
            }
        }

        // Merge in partition order; holes (all deadline-induced, and always
        // a suffix because workers claim indices monotonically) end the
        // prefix that gets returned.
        let mut seen = self.distinct.then(HashSet::new);
        let mut to_skip = self.offset;
        let mut id_rows: Vec<IdRow> = Vec::new();
        let mut deadline_exceeded = false;
        let mut completed = 0usize;
        'merge: for index in 0..morsels {
            let Some(result) = state.lock_output(index).take() else {
                deadline_exceeded = true;
                break;
            };
            completed += 1;
            for projected in result? {
                if let Some(seen) = &mut seen {
                    if !seen.insert(projected.clone()) {
                        continue;
                    }
                }
                if to_skip > 0 {
                    to_skip -= 1;
                    continue;
                }
                id_rows.push(projected);
                if self.limit.is_some_and(|limit| id_rows.len() >= limit) {
                    break 'merge;
                }
            }
        }

        let bindings: Vec<Binding> = id_rows
            .iter()
            .map(|row| decode_row(self.store, &self.projection, row))
            .collect();
        let metrics = ExecMetrics {
            rows_scanned: rows_scanned_per_worker.iter().sum(),
            rows_emitted: bindings.len() as u64,
            deadline_exceeded,
            parallel: Some(ParallelMetrics {
                dop: rows_scanned_per_worker.len(),
                morsels: completed,
                rows_scanned_per_worker,
            }),
        };
        Ok(PlannedExecution {
            results: QueryResults::Solutions(ResultSet::new(self.projection.clone(), bindings)),
            metrics,
        })
    }

    /// Flatten the operator tree into the rendered summary.
    fn build_summary(&self) -> PlanSummary {
        let mut summary = PlanSummary::default();
        let mut header = if self.is_ask {
            "ask".to_string()
        } else {
            let vars: Vec<String> = self.projection.iter().map(|v| format!("?{v}")).collect();
            format!("select {}", vars.join(" "))
        };
        if self.distinct {
            header.push_str(" distinct");
        }
        if let Some(limit) = self.limit {
            header.push_str(&format!(" limit {limit}"));
        }
        if self.offset > 0 {
            header.push_str(&format!(" offset {}", self.offset));
        }
        summary.push(0, header, None);
        // Surface the parallel decision the executor will actually take —
        // `EXPLAIN` and `execute` call the same `parallel_decision`.
        match self.parallel_decision() {
            Some(decision) => {
                summary.push(
                    1,
                    format!("parallel({})", decision.dop),
                    Some(decision.ranges.len() as f64),
                );
                summarize_node(&self.root, 2, Some(decision.ranges.len()), &mut summary);
            }
            None => summarize_node(&self.root, 1, None, &mut summary),
        }
        summary
    }
}

/// How a parallel run splits its driver scan: the chosen degree of
/// parallelism and the morsel key ranges, in scan order.
struct ParallelDecision {
    dop: usize,
    ranges: Vec<PartitionRange>,
}

/// One morsel's output slot: the projected id-rows it produced, or the
/// first error its plan tail hit.
type MorselOutput = Option<Result<Vec<IdRow>, SparqlError>>;

/// The shared state of one morsel-parallel run.  Everything is owned
/// (`Arc`s into the pinned snapshot and the plan tree), so the same value
/// serves the coordinating thread and the `'static` helper jobs on the
/// executor pool.
struct MorselRun {
    snapshot: Arc<StoreSnapshot>,
    root: Arc<PlanNode>,
    vars: Arc<VarRegistry>,
    text_cap: usize,
    text_slots: usize,
    /// Projection: variable slot per output column.
    slots: Vec<Option<usize>>,
    distinct: bool,
    /// `offset + limit` when the query pages: no morsel can contribute more
    /// than the whole page, so each stops after this many (distinct,
    /// when applicable) projected rows.
    cap: Option<usize>,
    ranges: Vec<PartitionRange>,
    /// Next unclaimed morsel index — the work-stealing cursor.
    next: AtomicUsize,
    /// One slot per morsel, written by whichever worker ran it.
    outputs: Vec<Mutex<MorselOutput>>,
    deadline: Option<Instant>,
    /// Latched once any worker observes the deadline passed; stops all
    /// further morsel claims.
    expired: AtomicBool,
}

impl MorselRun {
    fn lock_output(&self, index: usize) -> std::sync::MutexGuard<'_, MorselOutput> {
        self.outputs[index]
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// The deadline check every worker runs *between* morsels.
    fn expired_now(&self) -> bool {
        let Some(deadline) = self.deadline else {
            return false;
        };
        if self.expired.load(Ordering::Relaxed) {
            return true;
        }
        if Instant::now() >= deadline {
            self.expired.store(true, Ordering::Relaxed);
            return true;
        }
        false
    }

    /// Claim and run morsels until none are left (or the deadline passes).
    /// Returns the rows this worker scanned, for per-worker metrics.
    fn drain(&self) -> u64 {
        let mut scanned = 0u64;
        loop {
            if self.expired_now() {
                break;
            }
            let index = self.next.fetch_add(1, Ordering::SeqCst);
            if index >= self.ranges.len() {
                break;
            }
            let (result, morsel_scanned) = self.run_morsel(index);
            scanned += morsel_scanned;
            *self.lock_output(index) = Some(result);
        }
        scanned
    }

    /// Evaluate the whole operator tree with the driver scan clipped to one
    /// morsel's key range, materialising the morsel's projected rows.
    fn run_morsel(&self, index: usize) -> (Result<Vec<IdRow>, SparqlError>, u64) {
        let scanned = Cell::new(0u64);
        let text_cache: Vec<OnceCell<TextMatches>> =
            (0..self.text_slots).map(|_| OnceCell::new()).collect();
        // Parallel-eligible plans never contain SERVICE groups.
        let service_cache: Vec<OnceCell<Result<Vec<ServiceRow>, SparqlError>>> = Vec::new();
        let foreign = ForeignTerms::default();
        let ctx = ExecCtx {
            store: &self.snapshot,
            vars: &self.vars,
            text_cap: self.text_cap,
            scanned: &scanned,
            text_cache: &text_cache,
            services: None,
            service_cache: &service_cache,
            foreign: &foreign,
            morsel: Some(self.ranges[index]),
        };
        let seed: IdRow = vec![None; self.vars.len()];
        let rows = ctx.eval_node(&self.root, Box::new(std::iter::once(Ok(seed))));

        let mut out: Vec<IdRow> = Vec::new();
        // Morsel-local dedup is sound under a global cap: a row past a
        // morsel's first `cap` distinct values has at least `cap` distinct
        // predecessors in the concatenated stream, so it cannot be in the
        // global first `cap` either.  (The coordinator dedups across
        // morsels again.)
        let mut seen = self.distinct.then(HashSet::new);
        for res in rows {
            let row = match res {
                Ok(row) => row,
                Err(e) => return (Err(e), scanned.get()),
            };
            let projected: IdRow = self
                .slots
                .iter()
                .map(|slot| slot.and_then(|i| row[i]))
                .collect();
            if let Some(seen) = &mut seen {
                if !seen.insert(projected.clone()) {
                    continue;
                }
            }
            out.push(projected);
            if self.cap.is_some_and(|cap| out.len() >= cap) {
                break;
            }
        }
        (Ok(out), scanned.get())
    }
}

/// Render one node.  `partition` carries the morsel count of a parallel
/// run down the left spine so the driver scan can show a `partition` child
/// op; it is `None` everywhere a driver cannot live.
fn summarize_node(node: &PlanNode, depth: usize, partition: Option<usize>, out: &mut PlanSummary) {
    match node {
        PlanNode::Bgp { pre_filters, steps } => {
            out.push(depth, "bgp", None);
            for expr in pre_filters {
                out.push(depth + 1, format!("filter {expr}"), None);
            }
            for step in steps {
                let label = match &step.kind {
                    StepKind::Scan(_) => format!("scan {}", step.ast),
                    StepKind::TextSearch { .. } => format!("text {}", step.ast),
                    StepKind::NeverMatches => format!("never-matches {}", step.ast),
                };
                out.push(depth + 1, label, Some(step.estimate));
                if step.driver {
                    if let Some(morsels) = partition {
                        out.push(depth + 2, format!("partition ({morsels} morsels)"), None);
                    }
                }
                for expr in &step.filters {
                    out.push(depth + 2, format!("filter {expr}"), None);
                }
            }
        }
        PlanNode::Join(a, b) => {
            out.push(depth, "join", None);
            summarize_node(a, depth + 1, partition, out);
            summarize_node(b, depth + 1, None, out);
        }
        PlanNode::LeftJoin(a, b) => {
            out.push(depth, "left-join (optional)", None);
            summarize_node(a, depth + 1, partition, out);
            summarize_node(b, depth + 1, None, out);
        }
        PlanNode::Union(a, b) => {
            out.push(depth, "union", None);
            summarize_node(a, depth + 1, None, out);
            summarize_node(b, depth + 1, None, out);
        }
        PlanNode::Filter(inner, expr) => {
            out.push(depth, format!("filter {expr}"), None);
            summarize_node(inner, depth + 1, partition, out);
        }
        PlanNode::Service {
            kg,
            query,
            estimate,
            ..
        } => {
            out.push(depth, format!("service <kg:{kg}>"), Some(*estimate));
            for tp in query.pattern.all_triple_patterns() {
                out.push(depth + 1, format!("remote {tp}"), None);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use kgqan_rdf::{vocab, LiveStore, Triple};

    /// A store where join order matters: 200 people born in 4 cities, one
    /// person also a member of a tiny club.
    fn skewed_store() -> Store {
        let mut store = Store::new();
        let born = Term::iri("http://e/bornIn");
        let member = Term::iri("http://e/memberOf");
        let label = Term::iri(vocab::RDFS_LABEL);
        for i in 0..200 {
            let person = Term::iri(format!("http://e/person{i}"));
            let city = Term::iri(format!("http://e/city{}", i % 4));
            store.insert(Triple::new(person.clone(), born.clone(), city));
            store.insert(Triple::new(
                person,
                label.clone(),
                Term::literal_str(format!("person number {i}")),
            ));
        }
        store.insert(Triple::new(
            Term::iri("http://e/person7"),
            member,
            Term::iri("http://e/club"),
        ));
        store
    }

    #[test]
    fn planner_orders_selective_pattern_first() {
        let store = skewed_store();
        // Written worst-first: the 200-row bornIn scan before the 1-row
        // memberOf lookup.
        let query = parse_query(
            "SELECT ?p ?c WHERE { ?p <http://e/bornIn> ?c . \
             ?p <http://e/memberOf> <http://e/club> . }",
        )
        .unwrap();
        let plan = Planner::new(&store).plan(&query);
        let labels = plan.summary().step_labels();
        assert_eq!(labels.len(), 2);
        assert!(
            labels[0].contains("memberOf"),
            "selective pattern must run first:\n{}",
            plan.summary()
        );

        let run = plan.execute().unwrap();
        assert_eq!(run.results.rows().len(), 1);
        // 1 memberOf match + 1 bornIn extension — not 200 + 1.
        assert!(
            run.metrics.rows_scanned <= 4,
            "scanned {} rows",
            run.metrics.rows_scanned
        );
    }

    #[test]
    fn limit_stops_scanning_early() {
        let store = skewed_store();
        let query = parse_query("SELECT ?p WHERE { ?p <http://e/bornIn> ?c . } LIMIT 5").unwrap();
        let run = Planner::new(&store).plan(&query).execute().unwrap();
        assert_eq!(run.results.rows().len(), 5);
        assert_eq!(run.metrics.rows_emitted, 5);
        assert!(
            run.metrics.rows_scanned <= 5,
            "LIMIT 5 should scan ~5 index entries, scanned {}",
            run.metrics.rows_scanned
        );
    }

    #[test]
    fn ask_stops_after_first_row() {
        let store = skewed_store();
        let query = parse_query("ASK { ?p <http://e/bornIn> ?c . }").unwrap();
        let run = Planner::new(&store).plan(&query).execute().unwrap();
        assert_eq!(run.results.as_boolean(), Some(true));
        assert!(run.metrics.rows_scanned <= 1);
    }

    #[test]
    fn text_step_runs_before_unselective_scan() {
        let store = skewed_store();
        let query =
            parse_query(r#"SELECT ?v WHERE { ?v ?p ?d . ?d <bif:contains> "'person'" . } LIMIT 3"#)
                .unwrap();
        let plan = Planner::new(&store).plan(&query);
        let labels = plan.summary().step_labels();
        assert!(
            labels[0].starts_with("text "),
            "text probe must run first:\n{}",
            plan.summary()
        );
        let run = plan.execute().unwrap();
        assert_eq!(run.results.rows().len(), 3);
    }

    #[test]
    fn bound_subject_text_step_searches_once_not_per_row() {
        // 4 <name> edges vs ~200 literals matching "person": the planner
        // runs the selective scan first, demoting the text step to a
        // membership filter.  The search itself must then run once per
        // step, not once per row — total scan work stays O(rows + matches),
        // never O(rows × matches).
        let mut store = Store::new();
        let name = Term::iri("http://e/name");
        for i in 0..200 {
            store.insert(Triple::new(
                Term::iri(format!("http://e/x{i}")),
                Term::iri(vocab::RDFS_LABEL),
                Term::literal_str(format!("person alias {i}")),
            ));
        }
        for i in 0..4 {
            store.insert(Triple::new(
                Term::iri(format!("http://e/s{i}")),
                name.clone(),
                Term::literal_str(format!("person name {i}")),
            ));
        }
        let query = parse_query(
            r#"SELECT ?s ?d WHERE { ?s <http://e/name> ?d . ?d <bif:contains> "'person'" . }"#,
        )
        .unwrap();
        let plan = Planner::new(&store).plan(&query);
        let labels = plan.summary().step_labels();
        assert!(
            labels[0].starts_with("scan "),
            "selective scan must run first:\n{}",
            plan.summary()
        );
        let run = plan.execute().unwrap();
        assert_eq!(run.results.rows().len(), 4);
        // One search (≤204 matches counted once) + 4 scan extensions; the
        // old per-row search would have counted ~4×204.
        assert!(
            run.metrics.rows_scanned <= 204 + 4,
            "scanned {} rows — text search re-ran per row?",
            run.metrics.rows_scanned
        );
    }

    #[test]
    fn optional_text_step_shares_one_search_across_left_rows() {
        // The OPTIONAL right side re-runs once per left row; its
        // constant-string text search must still execute only once per run
        // (the match cache lives on the execution, not on the per-row
        // pipeline), keeping scan work O(rows + matches).
        let mut store = Store::new();
        let label = Term::iri(vocab::RDFS_LABEL);
        let born = Term::iri("http://e/bornIn");
        for i in 0..100 {
            let person = Term::iri(format!("http://e/person{i}"));
            store.insert(Triple::new(
                person.clone(),
                born.clone(),
                Term::iri("http://e/city0"),
            ));
            store.insert(Triple::new(
                person,
                label.clone(),
                Term::literal_str(format!("resident {i}")),
            ));
        }
        let query = parse_query(
            r#"SELECT ?p ?d WHERE {
                 ?p <http://e/bornIn> <http://e/city0> .
                 OPTIONAL { ?p <http://www.w3.org/2000/01/rdf-schema#label> ?d .
                            ?d <bif:contains> "'resident'" . } }"#,
        )
        .unwrap();
        let run = Planner::new(&store).plan(&query).execute().unwrap();
        assert_eq!(run.results.rows().len(), 100);
        // 100 bornIn scans + 100 label scans + ~100 text matches counted
        // once; a per-row search would count ~100×100.
        assert!(
            run.metrics.rows_scanned <= 100 + 100 + 100,
            "scanned {} rows — text search re-ran per left row?",
            run.metrics.rows_scanned
        );
    }

    #[test]
    fn filters_are_pushed_to_their_binding_step() {
        let store = skewed_store();
        let query = parse_query(
            "SELECT ?p ?c WHERE { ?p <http://e/memberOf> <http://e/club> . \
             ?p <http://e/bornIn> ?c . \
             FILTER (?c != <http://e/city0>) }",
        )
        .unwrap();
        let plan = Planner::new(&store).plan(&query);
        let rendered = plan.summary().to_string();
        // The filter line must appear nested under the bornIn step (which
        // binds ?c), not as a residual operator above the bgp.
        let bgp_pos = rendered.find("bgp").unwrap();
        let filter_pos = rendered.find("filter").unwrap();
        assert!(
            filter_pos > bgp_pos,
            "filter should be pushed inside the bgp:\n{rendered}"
        );
        let run = plan.execute().unwrap();
        assert_eq!(run.results.rows().len(), 1); // person7 born in city3
    }

    #[test]
    fn unknown_constant_becomes_never_matches_step() {
        let store = skewed_store();
        let query = parse_query(
            "SELECT ?p WHERE { ?p <http://nowhere/pred> ?x . ?p <http://e/bornIn> ?c . }",
        )
        .unwrap();
        let plan = Planner::new(&store).plan(&query);
        let labels = plan.summary().step_labels();
        // Estimate 0 schedules it first, emptying the pipeline immediately.
        assert!(labels[0].starts_with("never-matches "));
        let run = plan.execute().unwrap();
        assert!(run.results.rows().is_empty());
        assert_eq!(run.metrics.rows_scanned, 0);
    }

    #[test]
    fn offset_and_distinct_stream_correctly() {
        let store = skewed_store();
        let query =
            parse_query("SELECT DISTINCT ?c WHERE { ?p <http://e/bornIn> ?c . } LIMIT 2 OFFSET 1")
                .unwrap();
        let run = Planner::new(&store).plan(&query).execute().unwrap();
        assert_eq!(run.results.rows().len(), 2);
        // 4 distinct cities exist; the pipeline must stop once offset 1 +
        // limit 2 = 3 distinct values have been seen, well before all 200
        // bornIn entries are scanned.
        assert!(
            run.metrics.rows_scanned < 200,
            "scanned {}",
            run.metrics.rows_scanned
        );
    }

    #[test]
    fn explain_renders_an_operator_tree() {
        let store = skewed_store();
        let query = parse_query(
            "SELECT ?p ?c ?n WHERE { ?p <http://e/bornIn> ?c . \
             OPTIONAL { ?p <http://www.w3.org/2000/01/rdf-schema#label> ?n . } } LIMIT 10",
        )
        .unwrap();
        let summary = explain(&store, &query);
        let rendered = summary.to_string();
        assert!(rendered.contains("select ?p ?c ?n limit 10"), "{rendered}");
        assert!(rendered.contains("left-join (optional)"), "{rendered}");
        assert!(
            rendered.contains("scan ?p <http://e/bornIn> ?c ."),
            "{rendered}"
        );
        assert!(rendered.contains("est"), "{rendered}");
    }

    #[test]
    fn cartesian_product_still_answers_correctly() {
        let mut store = Store::new();
        store.insert(Triple::new(
            Term::iri("http://e/a"),
            Term::iri("http://e/p"),
            Term::iri("http://e/b"),
        ));
        store.insert(Triple::new(
            Term::iri("http://e/c"),
            Term::iri("http://e/q"),
            Term::iri("http://e/d"),
        ));
        // No shared variable: a forced cartesian product.
        let query = parse_query("SELECT ?x ?y WHERE { ?x <http://e/p> ?b . ?y <http://e/q> ?d . }")
            .unwrap();
        let run = Planner::new(&store).plan(&query).execute().unwrap();
        assert_eq!(run.results.rows().len(), 1);
    }

    /// A [`ServiceResolver`] over in-memory stores, counting remote calls.
    struct StoreResolver {
        stores: std::collections::BTreeMap<String, Store>,
        calls: std::sync::atomic::AtomicUsize,
    }

    impl StoreResolver {
        fn new(stores: impl IntoIterator<Item = (&'static str, Store)>) -> Self {
            StoreResolver {
                stores: stores
                    .into_iter()
                    .map(|(name, store)| (name.to_string(), store))
                    .collect(),
                calls: std::sync::atomic::AtomicUsize::new(0),
            }
        }
    }

    impl ServiceResolver for StoreResolver {
        fn service_names(&self) -> Vec<String> {
            self.stores.keys().cloned().collect()
        }

        fn execute_service(&self, kg: &str, query: &Query) -> Result<QueryResults, SparqlError> {
            self.calls.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            let store = self
                .stores
                .get(kg)
                .ok_or_else(|| SparqlError::UnknownService {
                    kg: kg.to_string(),
                    available: self.service_names(),
                })?;
            Ok(Planner::new(store).plan(query).execute()?.results)
        }
    }

    /// The skewed store published through a live store, for snapshot
    /// pinning (the parallel path requires an owned snapshot).
    fn skewed_live() -> std::sync::Arc<StoreSnapshot> {
        let live = LiveStore::new(skewed_store());
        live.snapshot()
    }

    /// A config aggressive enough to parallelise the 401-triple test store.
    fn eager_parallel() -> ParallelConfig {
        ParallelConfig {
            max_dop: 8,
            rows_per_worker: 8.0,
            morsels_per_worker: 2,
            min_page_rows: 0,
        }
    }

    #[test]
    fn parallel_run_matches_sequential_and_reports_per_worker_metrics() {
        let snapshot = skewed_live();
        let query = parse_query(
            "SELECT ?p ?c WHERE { ?p <http://e/bornIn> ?c . \
             ?p <http://www.w3.org/2000/01/rdf-schema#label> ?n . }",
        )
        .unwrap();
        let sequential = Planner::for_snapshot(&snapshot)
            .plan(&query)
            .execute()
            .unwrap();
        assert!(sequential.metrics.parallel.is_none());

        let plan = Planner::for_shared_snapshot(&snapshot)
            .with_parallelism(eager_parallel())
            .plan(&query);
        let parallel = plan.execute().unwrap();
        assert_eq!(parallel.results, sequential.results);
        let info = parallel.metrics.parallel.as_ref().expect("ran parallel");
        assert!(info.dop >= 1 && info.morsels >= 2, "{info:?}");
        assert_eq!(
            info.rows_scanned_per_worker.iter().sum::<u64>(),
            parallel.metrics.rows_scanned
        );
        assert!(!parallel.metrics.deadline_exceeded);
    }

    #[test]
    fn explain_renders_parallel_and_partition_ops() {
        let snapshot = skewed_live();
        let query = parse_query("SELECT ?p ?c WHERE { ?p <http://e/bornIn> ?c . }").unwrap();
        let plan = Planner::for_shared_snapshot(&snapshot)
            .with_parallelism(eager_parallel())
            .plan(&query);
        let rendered = plan.summary().to_string();
        assert!(rendered.contains("parallel("), "{rendered}");
        assert!(rendered.contains("partition ("), "{rendered}");
        // The scan labels stay stable for step_labels-based assertions.
        assert_eq!(plan.summary().step_labels().len(), 1);
    }

    #[test]
    fn small_queries_keep_the_sequential_fast_path() {
        let snapshot = skewed_live();
        let query = parse_query("SELECT ?p ?c WHERE { ?p <http://e/bornIn> ?c . }").unwrap();
        // Default config: a 200-row scan is far below rows_per_worker.
        let plan = Planner::for_shared_snapshot(&snapshot).plan(&query);
        assert!(!plan.summary().to_string().contains("parallel("));
        let run = plan.execute().unwrap();
        assert!(run.metrics.parallel.is_none());
        assert_eq!(run.results.rows().len(), 200);
    }

    #[test]
    fn ask_and_small_pages_stay_sequential_under_parallel_config() {
        let snapshot = skewed_live();
        let planner = Planner::for_shared_snapshot(&snapshot).with_parallelism(ParallelConfig {
            min_page_rows: 4_096,
            ..eager_parallel()
        });
        let ask = parse_query("ASK { ?p <http://e/bornIn> ?c . }").unwrap();
        let run = planner.plan(&ask).execute().unwrap();
        assert!(run.metrics.parallel.is_none());
        // LIMIT 5 pages are cheaper streamed than scanned in full.
        let paged = parse_query("SELECT ?p WHERE { ?p <http://e/bornIn> ?c . } LIMIT 5").unwrap();
        let run = planner.plan(&paged).execute().unwrap();
        assert!(run.metrics.parallel.is_none());
        assert!(run.metrics.rows_scanned <= 5);
    }

    #[test]
    fn expired_deadline_returns_partial_prefix_sequentially() {
        let store = skewed_store();
        let query = parse_query("SELECT ?p ?c WHERE { ?p <http://e/bornIn> ?c . }").unwrap();
        let plan = Planner::new(&store).plan(&query);
        let run = plan
            .execute_with(ExecOptions {
                deadline: Some(Instant::now() - std::time::Duration::from_millis(1)),
            })
            .unwrap();
        assert!(run.metrics.deadline_exceeded);
        assert!(
            run.results.rows().len() < 200,
            "expired deadline must cut the run short, got {} rows",
            run.results.rows().len()
        );
    }

    #[test]
    fn expired_deadline_stops_parallel_run_at_morsel_boundaries() {
        let snapshot = skewed_live();
        let query = parse_query("SELECT ?p ?c WHERE { ?p <http://e/bornIn> ?c . }").unwrap();
        let plan = Planner::for_shared_snapshot(&snapshot)
            .with_parallelism(eager_parallel())
            .plan(&query);
        // The decision *is* parallel (deadline does not affect eligibility)…
        let rendered = plan.summary().to_string();
        assert!(rendered.contains("parallel("), "{rendered}");
        // …but an already-expired deadline means no morsel is ever claimed.
        let run = plan
            .execute_with(ExecOptions {
                deadline: Some(Instant::now() - std::time::Duration::from_millis(1)),
            })
            .unwrap();
        assert!(run.metrics.deadline_exceeded);
        assert!(run.results.rows().is_empty());
    }

    #[test]
    fn service_joins_rows_across_stores() {
        let mut local = Store::new();
        local.insert(Triple::new(
            Term::iri("http://e/Alice"),
            Term::iri("http://e/spouse"),
            Term::iri("http://e/Bob"),
        ));
        let mut remote = Store::new();
        // `Bob` exists in both stores; `Berlin` only remotely, so the
        // result row must decode through the foreign-term table.
        remote.insert(Triple::new(
            Term::iri("http://e/Bob"),
            Term::iri("http://e/birthPlace"),
            Term::iri("http://e/Berlin"),
        ));
        remote.insert(Triple::new(
            Term::iri("http://e/Stranger"),
            Term::iri("http://e/birthPlace"),
            Term::iri("http://e/Paris"),
        ));
        let resolver = StoreResolver::new([("remote", remote)]);

        let query = parse_query(
            "SELECT ?q ?c WHERE { <http://e/Alice> <http://e/spouse> ?q . \
             SERVICE <kg:remote> { ?q <http://e/birthPlace> ?c . } }",
        )
        .unwrap();
        let plan = Planner::new(&local)
            .with_services(&resolver)
            .plan_checked(&query)
            .unwrap();

        let rendered = plan.summary().to_string();
        assert!(rendered.contains("service <kg:remote>"), "{rendered}");
        assert!(
            rendered.contains("remote ?q <http://e/birthPlace> ?c ."),
            "{rendered}"
        );
        assert!(
            plan.summary()
                .step_labels()
                .iter()
                .any(|l| l.starts_with("service ")),
            "{rendered}"
        );

        let run = plan.execute().unwrap();
        let rows = run.results.rows();
        // Only Bob's birth place joins; the stranger's row is filtered out.
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get("q"), Some(&Term::iri("http://e/Bob")));
        assert_eq!(rows[0].get("c"), Some(&Term::iri("http://e/Berlin")));
        assert_eq!(resolver.calls.load(std::sync::atomic::Ordering::SeqCst), 1);
    }

    #[test]
    fn service_remote_query_runs_once_per_execution() {
        let mut local = Store::new();
        for i in 0..5 {
            local.insert(Triple::new(
                Term::iri(format!("http://e/p{i}")),
                Term::iri("http://e/knows"),
                Term::iri("http://e/Bob"),
            ));
        }
        let mut remote = Store::new();
        remote.insert(Triple::new(
            Term::iri("http://e/Bob"),
            Term::iri("http://e/age"),
            Term::literal_str("42"),
        ));
        let resolver = StoreResolver::new([("remote", remote)]);
        let query = parse_query(
            "SELECT ?p ?a WHERE { ?p <http://e/knows> ?b . \
             SERVICE <kg:remote> { ?b <http://e/age> ?a . } }",
        )
        .unwrap();
        let plan = Planner::new(&local).with_services(&resolver).plan(&query);
        let run = plan.execute().unwrap();
        // Five local rows flow through the join, but the remote query runs
        // exactly once per run.
        assert_eq!(run.results.rows().len(), 5);
        assert_eq!(resolver.calls.load(std::sync::atomic::Ordering::SeqCst), 1);
    }

    #[test]
    fn plan_checked_rejects_unknown_service_target() {
        let store = Store::new();
        let resolver = StoreResolver::new([("DBpedia", Store::new())]);
        let query =
            parse_query("SELECT ?s WHERE { SERVICE <kg:Nope> { ?s <http://e/p> ?o . } }").unwrap();
        let err = Planner::new(&store)
            .with_services(&resolver)
            .plan_checked(&query)
            .unwrap_err();
        match err {
            SparqlError::UnknownService { kg, available } => {
                assert_eq!(kg, "Nope");
                assert_eq!(available, vec!["DBpedia".to_string()]);
            }
            other => panic!("expected UnknownService, got {other:?}"),
        }
        // The rendered message names the valid targets for the caller.
        let rendered = Planner::new(&store)
            .with_services(&resolver)
            .plan_checked(&query)
            .unwrap_err()
            .to_string();
        assert!(rendered.contains("DBpedia"), "{rendered}");
    }

    #[test]
    fn service_without_resolver_fails_at_plan_or_run_time() {
        let store = Store::new();
        let query =
            parse_query("SELECT ?s WHERE { SERVICE <kg:Anywhere> { ?s <http://e/p> ?o . } }")
                .unwrap();
        // plan_checked fails up front…
        let planner = Planner::new(&store);
        assert!(matches!(
            planner.plan_checked(&query),
            Err(SparqlError::Service { .. })
        ));
        // …and the infallible plan() defers the same error to execute().
        let err = planner.plan(&query).execute().unwrap_err();
        assert!(matches!(err, SparqlError::Service { .. }), "{err}");
    }
}
