//! Recursive-descent parser for the supported SPARQL subset.

use kgqan_rdf::{vocab, Term};

use crate::ast::{Expression, GraphPattern, Query, QueryForm, TriplePatternAst, VarOrTerm};
use crate::error::SparqlError;
use crate::lexer::{tokenize, DatatypeRef, Token};

/// Parse a SPARQL query string into a [`Query`].
pub fn parse_query(input: &str) -> Result<Query, SparqlError> {
    let tokens = tokenize(input)?;
    let mut parser = Parser {
        tokens,
        pos: 0,
        prefixes: Vec::new(),
    };
    parser.parse()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    prefixes: Vec<(String, String)>,
}

impl Parser {
    fn parse(&mut self) -> Result<Query, SparqlError> {
        // PREFIX declarations.
        while self.peek_keyword("PREFIX") {
            self.advance();
            self.parse_prefix_decl()?;
        }

        let form = if self.peek_keyword("SELECT") {
            self.advance();
            let distinct = if self.peek_keyword("DISTINCT") {
                self.advance();
                true
            } else {
                false
            };
            let mut variables = Vec::new();
            loop {
                match self.peek() {
                    Some(Token::Variable(v)) => {
                        variables.push(v.clone());
                        self.advance();
                    }
                    Some(Token::Star) => {
                        self.advance();
                        break;
                    }
                    _ => break,
                }
            }
            QueryForm::Select {
                variables,
                distinct,
            }
        } else if self.peek_keyword("ASK") {
            self.advance();
            QueryForm::Ask
        } else {
            return Err(SparqlError::Parse {
                message: "expected SELECT or ASK".into(),
            });
        };

        // WHERE is optional before the group.
        if self.peek_keyword("WHERE") {
            self.advance();
        }
        let pattern = self.parse_group()?;

        let mut limit = None;
        let mut offset = None;
        loop {
            if self.peek_keyword("LIMIT") {
                self.advance();
                limit = Some(self.parse_usize()?);
            } else if self.peek_keyword("OFFSET") {
                self.advance();
                offset = Some(self.parse_usize()?);
            } else {
                break;
            }
        }

        if self.pos < self.tokens.len() {
            return Err(SparqlError::Parse {
                message: format!("unexpected trailing tokens: {:?}", self.tokens[self.pos]),
            });
        }

        Ok(Query {
            form,
            pattern,
            limit,
            offset,
        })
    }

    fn parse_prefix_decl(&mut self) -> Result<(), SparqlError> {
        // PREFIX name: <iri>
        let (prefix, empty_local) = match self.next_token()? {
            Token::PrefixedName(prefix, local) => (prefix, local),
            other => {
                return Err(SparqlError::Parse {
                    message: format!("expected prefix name in PREFIX declaration, found {other:?}"),
                })
            }
        };
        if !empty_local.is_empty() {
            return Err(SparqlError::Parse {
                message: "prefix declaration must end with ':'".into(),
            });
        }
        let iri = match self.next_token()? {
            Token::Iri(iri) => iri,
            other => {
                return Err(SparqlError::Parse {
                    message: format!("expected IRI in PREFIX declaration, found {other:?}"),
                })
            }
        };
        self.prefixes.push((prefix, iri));
        Ok(())
    }

    fn parse_usize(&mut self) -> Result<usize, SparqlError> {
        match self.next_token()? {
            Token::Numeric(n) => n.parse().map_err(|_| SparqlError::Parse {
                message: format!("invalid number {n}"),
            }),
            other => Err(SparqlError::Parse {
                message: format!("expected number, found {other:?}"),
            }),
        }
    }

    /// Parse a `{ ... }` group: triple patterns, OPTIONAL groups, FILTER
    /// expressions and UNIONs, combined left-to-right.
    fn parse_group(&mut self) -> Result<GraphPattern, SparqlError> {
        self.expect(Token::LBrace)?;
        let mut current_bgp: Vec<TriplePatternAst> = Vec::new();
        let mut pattern: Option<GraphPattern> = None;
        let mut filters: Vec<Expression> = Vec::new();

        let flush_bgp = |bgp: &mut Vec<TriplePatternAst>, pattern: &mut Option<GraphPattern>| {
            if bgp.is_empty() {
                return;
            }
            let new = GraphPattern::Bgp(std::mem::take(bgp));
            *pattern = Some(match pattern.take() {
                None => new,
                Some(existing) => GraphPattern::Join(Box::new(existing), Box::new(new)),
            });
        };

        loop {
            match self.peek() {
                Some(Token::RBrace) => {
                    self.advance();
                    break;
                }
                Some(Token::Keyword(k)) if k == "OPTIONAL" => {
                    self.advance();
                    flush_bgp(&mut current_bgp, &mut pattern);
                    let inner = self.parse_group()?;
                    let left = pattern.take().unwrap_or_else(GraphPattern::empty);
                    pattern = Some(GraphPattern::Optional(Box::new(left), Box::new(inner)));
                }
                Some(Token::Keyword(k)) if k == "FILTER" => {
                    self.advance();
                    let expr = self.parse_filter_expression()?;
                    filters.push(expr);
                }
                Some(Token::Keyword(k)) if k == "SERVICE" => {
                    self.advance();
                    let kg = self.parse_service_target()?;
                    flush_bgp(&mut current_bgp, &mut pattern);
                    let inner = self.parse_group()?;
                    let service = GraphPattern::Service {
                        kg,
                        pattern: Box::new(inner),
                    };
                    pattern = Some(match pattern.take() {
                        None => service,
                        Some(existing) => GraphPattern::Join(Box::new(existing), Box::new(service)),
                    });
                }
                Some(Token::Keyword(k)) if k == "UNION" => {
                    self.advance();
                    flush_bgp(&mut current_bgp, &mut pattern);
                    let right = self.parse_group()?;
                    let left = pattern.take().unwrap_or_else(GraphPattern::empty);
                    pattern = Some(GraphPattern::Union(Box::new(left), Box::new(right)));
                }
                Some(Token::LBrace) => {
                    // Nested group (commonly the left side of a UNION).
                    flush_bgp(&mut current_bgp, &mut pattern);
                    let inner = self.parse_group()?;
                    pattern = Some(match pattern.take() {
                        None => inner,
                        Some(existing) => GraphPattern::Join(Box::new(existing), Box::new(inner)),
                    });
                }
                Some(Token::Dot) => {
                    self.advance();
                }
                None => {
                    return Err(SparqlError::Parse {
                        message: "unexpected end of input inside group".into(),
                    })
                }
                _ => {
                    let tp = self.parse_triple_pattern()?;
                    current_bgp.push(tp);
                }
            }
        }

        flush_bgp(&mut current_bgp, &mut pattern);
        let mut result = pattern.unwrap_or_else(GraphPattern::empty);
        for f in filters {
            result = GraphPattern::Filter(Box::new(result), f);
        }
        Ok(result)
    }

    /// Parse the target of a `SERVICE` clause: a `<kg:name>` IRI or a bare
    /// `kg:name` prefixed name naming a registered KG.
    fn parse_service_target(&mut self) -> Result<String, SparqlError> {
        match self.next_token()? {
            Token::Iri(iri) => match iri.strip_prefix("kg:") {
                Some(name) if !name.is_empty() => Ok(name.to_string()),
                _ => Err(SparqlError::Parse {
                    message: format!("SERVICE target must be <kg:name>, found <{iri}>"),
                }),
            },
            Token::PrefixedName(prefix, local) if prefix == "kg" && !local.is_empty() => Ok(local),
            other => Err(SparqlError::Parse {
                message: format!("SERVICE target must be <kg:name>, found {other:?}"),
            }),
        }
    }

    fn parse_triple_pattern(&mut self) -> Result<TriplePatternAst, SparqlError> {
        let subject = self.parse_var_or_term()?;
        let predicate = self.parse_var_or_term()?;
        let object = self.parse_var_or_term()?;
        Ok(TriplePatternAst::new(subject, predicate, object))
    }

    fn parse_var_or_term(&mut self) -> Result<VarOrTerm, SparqlError> {
        let token = self.next_token()?;
        self.token_to_var_or_term(token)
    }

    fn token_to_var_or_term(&self, token: Token) -> Result<VarOrTerm, SparqlError> {
        match token {
            Token::Variable(v) => Ok(VarOrTerm::Var(v)),
            Token::Iri(iri) => Ok(VarOrTerm::Term(Term::iri(iri))),
            Token::A => Ok(VarOrTerm::Term(Term::iri(vocab::RDF_TYPE))),
            Token::PrefixedName(prefix, local) => {
                let iri = self.resolve_prefix(&prefix, &local)?;
                Ok(VarOrTerm::Term(Term::iri(iri)))
            }
            Token::Literal {
                value,
                language,
                datatype,
            } => {
                let term = match (language, datatype) {
                    (Some(lang), _) => Term::literal_lang(value, lang),
                    (None, Some(DatatypeRef::Iri(dt))) => Term::literal_typed(value, dt),
                    (None, Some(DatatypeRef::Prefixed(prefix, local))) => {
                        let dt = self.resolve_prefix(&prefix, &local)?;
                        Term::literal_typed(value, dt)
                    }
                    (None, None) => Term::literal_str(value),
                };
                Ok(VarOrTerm::Term(term))
            }
            Token::Numeric(n) => {
                let datatype = if n.contains('.') {
                    vocab::XSD_DECIMAL
                } else {
                    vocab::XSD_INTEGER
                };
                Ok(VarOrTerm::Term(Term::literal_typed(n, datatype)))
            }
            Token::Keyword(k) if k == "TRUE" || k == "FALSE" => {
                Ok(VarOrTerm::Term(Term::boolean(k == "TRUE")))
            }
            other => Err(SparqlError::Parse {
                message: format!("expected variable or term, found {other:?}"),
            }),
        }
    }

    fn resolve_prefix(&self, prefix: &str, local: &str) -> Result<String, SparqlError> {
        // Explicit declarations take precedence; otherwise fall back to the
        // workspace-wide well-known prefixes so generated queries stay short.
        if let Some((_, ns)) = self.prefixes.iter().rev().find(|(p, _)| p == prefix) {
            return Ok(format!("{ns}{local}"));
        }
        let expanded = vocab::expand_curie(&format!("{prefix}:{local}"));
        if expanded != format!("{prefix}:{local}") {
            return Ok(expanded);
        }
        Err(SparqlError::UnknownPrefix(prefix.to_string()))
    }

    /// Parse `FILTER` followed by a parenthesised or function-style expression.
    fn parse_filter_expression(&mut self) -> Result<Expression, SparqlError> {
        self.parse_or_expression()
    }

    fn parse_or_expression(&mut self) -> Result<Expression, SparqlError> {
        let mut left = self.parse_and_expression()?;
        while matches!(self.peek(), Some(Token::Or)) {
            self.advance();
            let right = self.parse_and_expression()?;
            left = Expression::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_and_expression(&mut self) -> Result<Expression, SparqlError> {
        let mut left = self.parse_comparison()?;
        while matches!(self.peek(), Some(Token::And)) {
            self.advance();
            let right = self.parse_comparison()?;
            left = Expression::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_comparison(&mut self) -> Result<Expression, SparqlError> {
        let left = self.parse_unary()?;
        let op = match self.peek() {
            Some(Token::Eq) => Some("="),
            Some(Token::Neq) => Some("!="),
            Some(Token::Lt) => Some("<"),
            Some(Token::Gt) => Some(">"),
            Some(Token::Le) => Some("<="),
            Some(Token::Ge) => Some(">="),
            _ => None,
        };
        if let Some(op) = op {
            self.advance();
            let right = self.parse_unary()?;
            let boxed = (Box::new(left), Box::new(right));
            return Ok(match op {
                "=" => Expression::Eq(boxed.0, boxed.1),
                "!=" => Expression::Neq(boxed.0, boxed.1),
                "<" => Expression::Lt(boxed.0, boxed.1),
                ">" => Expression::Gt(boxed.0, boxed.1),
                "<=" => Expression::Le(boxed.0, boxed.1),
                _ => Expression::Ge(boxed.0, boxed.1),
            });
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> Result<Expression, SparqlError> {
        match self.peek() {
            Some(Token::Not) => {
                self.advance();
                let inner = self.parse_unary()?;
                Ok(Expression::Not(Box::new(inner)))
            }
            Some(Token::LParen) => {
                self.advance();
                let inner = self.parse_or_expression()?;
                self.expect(Token::RParen)?;
                Ok(inner)
            }
            Some(Token::Keyword(k)) => {
                let keyword = k.clone();
                match keyword.as_str() {
                    "CONTAINS" | "REGEX" => {
                        self.advance();
                        self.expect(Token::LParen)?;
                        let a = self.parse_or_expression()?;
                        self.expect(Token::Comma)?;
                        let b = self.parse_or_expression()?;
                        self.expect(Token::RParen)?;
                        Ok(if keyword == "CONTAINS" {
                            Expression::Contains(Box::new(a), Box::new(b))
                        } else {
                            Expression::Regex(Box::new(a), Box::new(b))
                        })
                    }
                    "LANG" | "STR" | "LANGMATCHES" => {
                        self.advance();
                        self.expect(Token::LParen)?;
                        let a = self.parse_or_expression()?;
                        let result = if keyword == "LANGMATCHES" {
                            self.expect(Token::Comma)?;
                            let b = self.parse_or_expression()?;
                            // LANGMATCHES(LANG(?x), "en") ≈ CONTAINS on the tag.
                            Expression::Contains(Box::new(a), Box::new(b))
                        } else if keyword == "LANG" {
                            Expression::Lang(Box::new(a))
                        } else {
                            Expression::Str(Box::new(a))
                        };
                        self.expect(Token::RParen)?;
                        Ok(result)
                    }
                    "BOUND" => {
                        self.advance();
                        self.expect(Token::LParen)?;
                        let var = match self.next_token()? {
                            Token::Variable(v) => v,
                            other => {
                                return Err(SparqlError::Parse {
                                    message: format!("BOUND expects a variable, found {other:?}"),
                                })
                            }
                        };
                        self.expect(Token::RParen)?;
                        Ok(Expression::Bound(var))
                    }
                    "TRUE" | "FALSE" => {
                        self.advance();
                        Ok(Expression::Constant(Term::boolean(keyword == "TRUE")))
                    }
                    other => Err(SparqlError::Parse {
                        message: format!("unexpected keyword {other} in expression"),
                    }),
                }
            }
            Some(Token::Variable(_))
            | Some(Token::Iri(_))
            | Some(Token::PrefixedName(_, _))
            | Some(Token::Literal { .. })
            | Some(Token::Numeric(_)) => {
                let token = self.next_token()?;
                match self.token_to_var_or_term(token)? {
                    VarOrTerm::Var(v) => Ok(Expression::Var(v)),
                    VarOrTerm::Term(t) => Ok(Expression::Constant(t)),
                }
            }
            other => Err(SparqlError::Parse {
                message: format!("unexpected token in expression: {other:?}"),
            }),
        }
    }

    // -- token plumbing -----------------------------------------------------

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Keyword(k)) if k == kw)
    }

    fn advance(&mut self) {
        self.pos += 1;
    }

    fn next_token(&mut self) -> Result<Token, SparqlError> {
        let t = self
            .tokens
            .get(self.pos)
            .cloned()
            .ok_or(SparqlError::Parse {
                message: "unexpected end of input".into(),
            })?;
        self.pos += 1;
        Ok(t)
    }

    fn expect(&mut self, expected: Token) -> Result<(), SparqlError> {
        let t = self.next_token()?;
        if t == expected {
            Ok(())
        } else {
            Err(SparqlError::Parse {
                message: format!("expected {expected:?}, found {t:?}"),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_figure1_query() {
        let q = parse_query(
            r#"PREFIX dbv: <http://dbpedia.org/resource/>
            SELECT ?sea WHERE {
              ?sea <http://dbpedia.org/property/outflow> dbv:Danish_straits .
              ?sea <http://dbpedia.org/ontology/nearestCity> dbv:Kaliningrad . }"#,
        )
        .unwrap();
        assert_eq!(q.projected_variables(), vec!["sea"]);
        let tps = q.pattern.all_triple_patterns();
        assert_eq!(tps.len(), 2);
        assert_eq!(
            tps[0].object,
            VarOrTerm::Term(Term::iri("http://dbpedia.org/resource/Danish_straits"))
        );
    }

    #[test]
    fn parses_select_star_distinct_limit() {
        let q = parse_query("SELECT DISTINCT * WHERE { ?s ?p ?o . } LIMIT 10 OFFSET 5").unwrap();
        match q.form {
            QueryForm::Select {
                distinct,
                ref variables,
            } => {
                assert!(distinct);
                assert!(variables.is_empty());
            }
            _ => panic!("expected select"),
        }
        assert_eq!(q.limit, Some(10));
        assert_eq!(q.offset, Some(5));
        assert_eq!(q.projected_variables(), vec!["s", "p", "o"]);
    }

    #[test]
    fn parses_ask_query() {
        let q = parse_query("ASK { <http://e/a> <http://e/b> <http://e/c> }").unwrap();
        assert!(q.is_ask());
        assert_eq!(q.pattern.all_triple_patterns().len(), 1);
    }

    #[test]
    fn parses_optional_group() {
        let q = parse_query(
            "SELECT ?u ?type WHERE { ?u <http://e/p> <http://e/o> . OPTIONAL { ?u a ?type . } }",
        )
        .unwrap();
        match q.pattern {
            GraphPattern::Optional(_, _) => {}
            other => panic!("expected optional, got {other:?}"),
        }
    }

    #[test]
    fn parses_filter_expressions() {
        let q = parse_query(
            r#"SELECT ?x WHERE { ?x <http://e/age> ?age . FILTER (?age >= 18 && CONTAINS(?name, "gray")) }"#,
        )
        .unwrap();
        match q.pattern {
            GraphPattern::Filter(_, Expression::And(_, _)) => {}
            other => panic!("expected filter(and), got {other:?}"),
        }
    }

    #[test]
    fn parses_bif_contains_pattern() {
        let q = parse_query(
            r#"SELECT DISTINCT ?v ?d WHERE { ?v ?p ?d . ?d <bif:contains> "'danish' OR 'straits'" . } LIMIT 400"#,
        )
        .unwrap();
        let tps = q.pattern.all_triple_patterns();
        assert_eq!(tps.len(), 2);
        assert_eq!(tps[1].predicate, VarOrTerm::Term(Term::iri("bif:contains")));
        assert_eq!(q.limit, Some(400));
    }

    #[test]
    fn parses_union() {
        let q = parse_query(
            "SELECT ?x WHERE { { ?x <http://e/a> ?y . } UNION { ?x <http://e/b> ?y . } }",
        )
        .unwrap();
        match q.pattern {
            GraphPattern::Union(_, _) => {}
            other => panic!("expected union, got {other:?}"),
        }
    }

    #[test]
    fn parses_service_group() {
        let q = parse_query(
            "SELECT ?x ?c WHERE { ?x <http://e/a> ?y . \
             SERVICE <kg:Wikidata> { ?y <http://e/b> ?c . } }",
        )
        .unwrap();
        match &q.pattern {
            GraphPattern::Join(_, service) => match service.as_ref() {
                GraphPattern::Service { kg, pattern } => {
                    assert_eq!(kg, "Wikidata");
                    assert_eq!(pattern.all_triple_patterns().len(), 1);
                }
                other => panic!("expected service, got {other:?}"),
            },
            other => panic!("expected join, got {other:?}"),
        }
        assert!(q.pattern.has_service());
        assert_eq!(q.pattern.service_targets(), vec!["Wikidata"]);

        // A bare prefixed-name target works too, and a leading SERVICE
        // group needs no preceding pattern.
        let q =
            parse_query("SELECT ?c WHERE { SERVICE kg:YAGO { ?y <http://e/b> ?c . } }").unwrap();
        assert!(matches!(q.pattern, GraphPattern::Service { .. }));
    }

    #[test]
    fn service_target_must_name_a_kg() {
        assert!(
            parse_query("SELECT ?c WHERE { SERVICE <http://remote/sparql> { ?y ?p ?c . } }")
                .is_err()
        );
        assert!(parse_query("SELECT ?c WHERE { SERVICE ?target { ?y ?p ?c . } }").is_err());
        assert!(parse_query("SELECT ?c WHERE { SERVICE <kg:> { ?y ?p ?c . } }").is_err());
    }

    #[test]
    fn well_known_prefixes_resolve_without_declaration() {
        let q = parse_query("SELECT ?x WHERE { ?x rdf:type dbo:Sea . }").unwrap();
        let tps = q.pattern.all_triple_patterns();
        assert_eq!(
            tps[0].predicate,
            VarOrTerm::Term(Term::iri(vocab::RDF_TYPE))
        );
        assert_eq!(
            tps[0].object,
            VarOrTerm::Term(Term::iri("http://dbpedia.org/ontology/Sea"))
        );
    }

    #[test]
    fn unknown_prefix_is_an_error() {
        let err = parse_query("SELECT ?x WHERE { ?x zzz:thing ?y . }").unwrap_err();
        assert!(matches!(err, SparqlError::UnknownPrefix(_)));
    }

    #[test]
    fn missing_where_group_is_an_error() {
        assert!(parse_query("SELECT ?x").is_err());
        assert!(parse_query("SELECT ?x WHERE { ?x <http://e/p>").is_err());
    }

    #[test]
    fn trailing_garbage_is_an_error() {
        assert!(parse_query("SELECT ?x WHERE { ?x ?p ?o } LIMIT 5 garbage").is_err());
    }

    #[test]
    fn numeric_and_boolean_objects_parse() {
        let q =
            parse_query("SELECT ?x WHERE { ?x <http://e/pop> 431000 . ?x <http://e/eu> true . }")
                .unwrap();
        let tps = q.pattern.all_triple_patterns();
        assert!(tps[0]
            .object
            .as_term()
            .unwrap()
            .as_literal()
            .unwrap()
            .is_numeric());
        assert!(tps[1]
            .object
            .as_term()
            .unwrap()
            .as_literal()
            .unwrap()
            .is_boolean());
    }

    #[test]
    fn explicit_prefix_overrides_builtin() {
        let q = parse_query(
            "PREFIX dbo: <http://example.org/other/> SELECT ?x WHERE { ?x dbo:thing ?y . }",
        )
        .unwrap();
        let tps = q.pattern.all_triple_patterns();
        assert_eq!(
            tps[0].predicate,
            VarOrTerm::Term(Term::iri("http://example.org/other/thing"))
        );
    }
}
