//! Query results: variable bindings, solution sequences and ASK booleans.

use std::collections::BTreeMap;
use std::fmt;

use kgqan_rdf::Term;

/// A single solution: a mapping from variable names to terms.
///
/// Backed by a `BTreeMap` so that iteration order — and therefore result
/// serialization — is deterministic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Binding {
    values: BTreeMap<String, Term>,
}

impl Binding {
    /// An empty binding.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bind a variable to a term, returning the updated binding.
    pub fn with(mut self, var: impl Into<String>, term: Term) -> Self {
        self.values.insert(var.into(), term);
        self
    }

    /// Bind a variable to a term in place.
    pub fn set(&mut self, var: impl Into<String>, term: Term) {
        self.values.insert(var.into(), term);
    }

    /// The term bound to `var`, if any.
    pub fn get(&self, var: &str) -> Option<&Term> {
        self.values.get(var)
    }

    /// True if `var` is bound.
    pub fn is_bound(&self, var: &str) -> bool {
        self.values.contains_key(var)
    }

    /// Number of bound variables.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if no variable is bound.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterate over `(variable, term)` pairs in variable order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Term)> {
        self.values.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Merge another binding into this one.  Returns `None` if the two
    /// bindings disagree on any shared variable (join incompatibility).
    pub fn merge(&self, other: &Binding) -> Option<Binding> {
        let mut merged = self.clone();
        for (var, term) in &other.values {
            match merged.values.get(var) {
                Some(existing) if existing != term => return None,
                _ => {
                    merged.values.insert(var.clone(), term.clone());
                }
            }
        }
        Some(merged)
    }

    /// Project the binding onto a set of variables (drops everything else).
    pub fn project(&self, variables: &[String]) -> Binding {
        let mut out = Binding::new();
        for v in variables {
            if let Some(t) = self.values.get(v) {
                out.values.insert(v.clone(), t.clone());
            }
        }
        out
    }
}

impl fmt::Display for Binding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (var, term)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "?{var} = {term}")?;
        }
        write!(f, "}}")
    }
}

/// An ordered sequence of solutions with a projection header.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ResultSet {
    variables: Vec<String>,
    rows: Vec<Binding>,
}

impl ResultSet {
    /// Construct a result set.
    pub fn new(variables: Vec<String>, rows: Vec<Binding>) -> Self {
        ResultSet { variables, rows }
    }

    /// The projected variable names.
    pub fn variables(&self) -> &[String] {
        &self.variables
    }

    /// The solution rows.
    pub fn rows(&self) -> &[Binding] {
        &self.rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// All terms bound to `var` across the rows, in row order, skipping
    /// unbound rows.  This is how KGQAn collects candidate answers.
    pub fn column(&self, var: &str) -> Vec<Term> {
        self.rows
            .iter()
            .filter_map(|b| b.get(var).cloned())
            .collect()
    }
}

/// The result of executing a query: a solution sequence for SELECT, or a
/// boolean for ASK.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryResults {
    /// SELECT results.
    Solutions(ResultSet),
    /// ASK result.
    Boolean(bool),
}

impl QueryResults {
    /// The solution sequence, if this is a SELECT result.
    pub fn as_solutions(&self) -> Option<&ResultSet> {
        match self {
            QueryResults::Solutions(rs) => Some(rs),
            QueryResults::Boolean(_) => None,
        }
    }

    /// The boolean, if this is an ASK result.
    pub fn as_boolean(&self) -> Option<bool> {
        match self {
            QueryResults::Boolean(b) => Some(*b),
            QueryResults::Solutions(_) => None,
        }
    }

    /// Convenience accessor used throughout the harness: the rows of a
    /// SELECT result, or an empty slice for ASK.
    pub fn rows(&self) -> &[Binding] {
        match self {
            QueryResults::Solutions(rs) => rs.rows(),
            QueryResults::Boolean(_) => &[],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binding_set_get_and_display() {
        let b = Binding::new()
            .with("sea", Term::iri("http://e/Baltic_Sea"))
            .with("type", Term::iri("http://e/Sea"));
        assert!(b.is_bound("sea"));
        assert!(!b.is_bound("missing"));
        assert_eq!(b.len(), 2);
        let shown = b.to_string();
        assert!(shown.contains("?sea"));
        assert!(shown.contains("?type"));
    }

    #[test]
    fn merge_compatible_and_incompatible() {
        let a = Binding::new().with("x", Term::iri("http://e/1"));
        let b = Binding::new().with("y", Term::iri("http://e/2"));
        let merged = a.merge(&b).unwrap();
        assert_eq!(merged.len(), 2);

        let conflicting = Binding::new().with("x", Term::iri("http://e/other"));
        assert!(a.merge(&conflicting).is_none());

        // Agreeing on the shared variable is fine.
        let agreeing = Binding::new()
            .with("x", Term::iri("http://e/1"))
            .with("z", Term::iri("http://e/3"));
        assert_eq!(a.merge(&agreeing).unwrap().len(), 2);
    }

    #[test]
    fn project_keeps_only_requested_vars() {
        let b = Binding::new()
            .with("x", Term::iri("http://e/1"))
            .with("y", Term::iri("http://e/2"));
        let p = b.project(&["x".to_string(), "missing".to_string()]);
        assert_eq!(p.len(), 1);
        assert!(p.is_bound("x"));
    }

    #[test]
    fn result_set_column_extraction() {
        let rows = vec![
            Binding::new().with("a", Term::integer(1)),
            Binding::new()
                .with("a", Term::integer(2))
                .with("b", Term::integer(3)),
            Binding::new().with("b", Term::integer(4)),
        ];
        let rs = ResultSet::new(vec!["a".into(), "b".into()], rows);
        assert_eq!(rs.len(), 3);
        assert_eq!(rs.column("a").len(), 2);
        assert_eq!(rs.column("b").len(), 2);
        assert_eq!(rs.column("c").len(), 0);
    }

    #[test]
    fn query_results_accessors() {
        let rs = QueryResults::Solutions(ResultSet::new(vec!["x".into()], vec![]));
        assert!(rs.as_solutions().is_some());
        assert!(rs.as_boolean().is_none());
        assert!(rs.rows().is_empty());

        let b = QueryResults::Boolean(true);
        assert_eq!(b.as_boolean(), Some(true));
        assert!(b.as_solutions().is_none());
    }
}
