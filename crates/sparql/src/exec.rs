//! The process-wide morsel executor: a shared [`WorkerPool`] that every
//! parallel query run draws helper workers from, plus the observability
//! counters the serving layer exports on `/metrics`.
//!
//! One pool serves the whole process — a query never spawns threads of its
//! own (thread-per-query would let N concurrent large queries oversubscribe
//! the machine N-fold).  Instead, each parallel run submits *morsel drain
//! jobs* to this pool with [`WorkerPool::try_submit`], which never blocks:
//! when the pool is saturated the run simply proceeds with fewer helpers
//! (in the limit, the coordinating thread drains every morsel itself), so
//! intra-query parallelism degrades gracefully under inter-query load
//! instead of deadlocking or queueing unboundedly.
//!
//! The counters here are process-global on purpose: the HTTP front-end
//! renders them as `executor_parallel_queries_total` and
//! `executor_active_workers` without having to thread a handle through
//! every endpoint layer.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use crate::pool::{PoolConfig, SubmitError, Ticket, WorkerPool};

/// The shared pool parallel query runs execute their morsels on.
///
/// Obtain the process-wide instance with [`ExecutorPool::shared`]; it is
/// created lazily on the first parallel run and sized to the machine
/// ([`std::thread::available_parallelism`]).  Tests can build private pools
/// with [`ExecutorPool::new`].
pub struct ExecutorPool {
    pool: WorkerPool,
}

static SHARED: OnceLock<ExecutorPool> = OnceLock::new();

/// Total parallel query runs started in this process (monotonic).
static PARALLEL_QUERIES: AtomicU64 = AtomicU64::new(0);

impl ExecutorPool {
    /// Build a private pool with `workers` threads (at least one) — used by
    /// tests; production code shares one pool via [`ExecutorPool::shared`].
    pub fn new(workers: usize) -> ExecutorPool {
        ExecutorPool {
            pool: WorkerPool::new(PoolConfig {
                workers: workers.max(1),
                // Generous bound: morsel jobs are small and short-lived, and
                // rejected submissions only cost parallelism, not
                // correctness.
                queue_bound: 256,
            }),
        }
    }

    /// The process-wide executor pool, created on first use with one worker
    /// per available core.
    pub fn shared() -> &'static ExecutorPool {
        SHARED.get_or_init(|| {
            let workers = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1);
            ExecutorPool::new(workers)
        })
    }

    /// Worker threads serving this pool.
    pub fn workers(&self) -> usize {
        self.pool.stats().workers
    }

    /// Morsel jobs currently executing (the `/metrics` active-worker
    /// gauge).
    pub fn active_workers(&self) -> usize {
        self.pool.stats().running
    }

    /// Submit one morsel drain job; never blocks.  Callers treat a rejected
    /// submission as "run with fewer helpers", not as an error.
    pub(crate) fn try_submit<T, F>(&self, job: F) -> Result<Ticket<T>, SubmitError>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        self.pool.try_submit(job)
    }
}

/// How many parallel query runs this process has started (the `/metrics`
/// `executor_parallel_queries_total` counter).
pub fn parallel_queries_total() -> u64 {
    PARALLEL_QUERIES.load(Ordering::Relaxed)
}

/// Morsel jobs executing on the shared pool right now; `0` when no parallel
/// query has run yet (the pool is created lazily).
pub fn executor_active_workers() -> usize {
    SHARED.get().map_or(0, ExecutorPool::active_workers)
}

/// Count one parallel query run.
pub(crate) fn record_parallel_query() {
    PARALLEL_QUERIES.fetch_add(1, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn private_pool_reports_workers_and_counts() {
        let pool = ExecutorPool::new(2);
        assert_eq!(pool.workers(), 2);
        let ticket = pool.try_submit(|| 41 + 1).unwrap();
        assert_eq!(ticket.wait(), Some(42));
        // The worker fulfils the ticket *before* it clears its running
        // flag, so the gauge may lag the wait by an instant.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while pool.active_workers() != 0 && std::time::Instant::now() < deadline {
            std::thread::yield_now();
        }
        assert_eq!(pool.active_workers(), 0);
    }

    #[test]
    fn zero_workers_is_clamped_to_one() {
        let pool = ExecutorPool::new(0);
        assert_eq!(pool.workers(), 1);
    }
}
