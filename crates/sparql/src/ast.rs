//! Abstract syntax tree for the supported SPARQL subset.

use kgqan_rdf::Term;

/// Either a variable or a concrete RDF term — the possible values of a
/// triple-pattern position.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum VarOrTerm {
    /// A named variable (`?sea`), stored without the question mark.
    Var(String),
    /// A concrete term.
    Term(Term),
}

impl VarOrTerm {
    /// Construct a variable.
    pub fn var(name: impl Into<String>) -> Self {
        VarOrTerm::Var(name.into())
    }

    /// Construct a term.
    pub fn term(term: Term) -> Self {
        VarOrTerm::Term(term)
    }

    /// Construct an IRI term.
    pub fn iri(iri: impl Into<String>) -> Self {
        VarOrTerm::Term(Term::iri(iri))
    }

    /// The variable name, if this is a variable.
    pub fn as_var(&self) -> Option<&str> {
        match self {
            VarOrTerm::Var(v) => Some(v),
            VarOrTerm::Term(_) => None,
        }
    }

    /// The term, if this is a term.
    pub fn as_term(&self) -> Option<&Term> {
        match self {
            VarOrTerm::Var(_) => None,
            VarOrTerm::Term(t) => Some(t),
        }
    }

    /// True if this position is a variable.
    pub fn is_var(&self) -> bool {
        matches!(self, VarOrTerm::Var(_))
    }
}

impl std::fmt::Display for VarOrTerm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VarOrTerm::Var(v) => write!(f, "?{v}"),
            VarOrTerm::Term(t) => write!(f, "{t}"),
        }
    }
}

/// A triple pattern inside a WHERE clause.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TriplePatternAst {
    /// Subject position.
    pub subject: VarOrTerm,
    /// Predicate position.
    pub predicate: VarOrTerm,
    /// Object position.
    pub object: VarOrTerm,
}

impl TriplePatternAst {
    /// Construct a triple pattern.
    pub fn new(subject: VarOrTerm, predicate: VarOrTerm, object: VarOrTerm) -> Self {
        TriplePatternAst {
            subject,
            predicate,
            object,
        }
    }

    /// Variables mentioned in this pattern.
    pub fn variables(&self) -> Vec<&str> {
        [&self.subject, &self.predicate, &self.object]
            .into_iter()
            .filter_map(|x| x.as_var())
            .collect()
    }

    /// Number of non-variable positions — a crude selectivity proxy used for
    /// join ordering.
    pub fn bound_positions(&self) -> usize {
        [&self.subject, &self.predicate, &self.object]
            .into_iter()
            .filter(|x| !x.is_var())
            .count()
    }
}

impl std::fmt::Display for TriplePatternAst {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {} {} .", self.subject, self.predicate, self.object)
    }
}

/// A filter / value expression.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expression {
    /// A variable reference.
    Var(String),
    /// A constant term.
    Constant(Term),
    /// Equality.
    Eq(Box<Expression>, Box<Expression>),
    /// Inequality.
    Neq(Box<Expression>, Box<Expression>),
    /// Numeric/string less-than.
    Lt(Box<Expression>, Box<Expression>),
    /// Numeric/string greater-than.
    Gt(Box<Expression>, Box<Expression>),
    /// Numeric/string less-or-equal.
    Le(Box<Expression>, Box<Expression>),
    /// Numeric/string greater-or-equal.
    Ge(Box<Expression>, Box<Expression>),
    /// Logical conjunction.
    And(Box<Expression>, Box<Expression>),
    /// Logical disjunction.
    Or(Box<Expression>, Box<Expression>),
    /// Logical negation.
    Not(Box<Expression>),
    /// `CONTAINS(haystack, needle)` — case-insensitive substring test.
    Contains(Box<Expression>, Box<Expression>),
    /// `REGEX(text, pattern)` — substring / anchored-lite matching.
    Regex(Box<Expression>, Box<Expression>),
    /// `LANG(?x)` — language tag of a literal.
    Lang(Box<Expression>),
    /// `STR(?x)` — lexical form of a term.
    Str(Box<Expression>),
    /// `BOUND(?x)` — whether the variable is bound.
    Bound(String),
}

impl Expression {
    /// All variable names referenced anywhere in the expression (including
    /// inside `BOUND`), in first-seen order with duplicates removed.  The
    /// query planner uses this to decide how early a `FILTER` can run.
    pub fn variables(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_variables(&mut out);
        out
    }

    fn collect_variables<'a>(&'a self, out: &mut Vec<&'a str>) {
        let mut push = |v: &'a str| {
            if !out.contains(&v) {
                out.push(v);
            }
        };
        match self {
            Expression::Var(v) | Expression::Bound(v) => push(v),
            Expression::Constant(_) => {}
            Expression::Eq(a, b)
            | Expression::Neq(a, b)
            | Expression::Lt(a, b)
            | Expression::Gt(a, b)
            | Expression::Le(a, b)
            | Expression::Ge(a, b)
            | Expression::And(a, b)
            | Expression::Or(a, b)
            | Expression::Contains(a, b)
            | Expression::Regex(a, b) => {
                a.collect_variables(out);
                b.collect_variables(out);
            }
            Expression::Not(inner) | Expression::Lang(inner) | Expression::Str(inner) => {
                inner.collect_variables(out)
            }
        }
    }
}

impl std::fmt::Display for Expression {
    /// Renders the expression in re-parseable SPARQL syntax.  Binary
    /// operators are always parenthesised so precedence survives the
    /// round-trip.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Expression::Var(v) => write!(f, "?{v}"),
            Expression::Constant(t) => write!(f, "{t}"),
            Expression::Eq(a, b) => write!(f, "({a} = {b})"),
            Expression::Neq(a, b) => write!(f, "({a} != {b})"),
            Expression::Lt(a, b) => write!(f, "({a} < {b})"),
            Expression::Gt(a, b) => write!(f, "({a} > {b})"),
            Expression::Le(a, b) => write!(f, "({a} <= {b})"),
            Expression::Ge(a, b) => write!(f, "({a} >= {b})"),
            Expression::And(a, b) => write!(f, "({a} && {b})"),
            Expression::Or(a, b) => write!(f, "({a} || {b})"),
            Expression::Not(inner) => write!(f, "!{inner}"),
            Expression::Contains(a, b) => write!(f, "CONTAINS({a}, {b})"),
            Expression::Regex(a, b) => write!(f, "REGEX({a}, {b})"),
            Expression::Lang(inner) => write!(f, "LANG({inner})"),
            Expression::Str(inner) => write!(f, "STR({inner})"),
            Expression::Bound(v) => write!(f, "BOUND(?{v})"),
        }
    }
}

/// A graph pattern: the contents of a `{ ... }` group.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum GraphPattern {
    /// A basic graph pattern: a conjunction of triple patterns.
    Bgp(Vec<TriplePatternAst>),
    /// Sequential join of two patterns.
    Join(Box<GraphPattern>, Box<GraphPattern>),
    /// `OPTIONAL` — left outer join.
    Optional(Box<GraphPattern>, Box<GraphPattern>),
    /// `FILTER` applied to an inner pattern.
    Filter(Box<GraphPattern>, Expression),
    /// `UNION` of two patterns.
    Union(Box<GraphPattern>, Box<GraphPattern>),
    /// `SERVICE <kg:name> { ... }` — evaluate the inner pattern against
    /// another registered KG and join the rows back into this query.  The
    /// target is the registry name of the remote KG (the `name` in
    /// `<kg:name>`), resolved at plan time through a
    /// [`plan::ServiceResolver`](crate::plan::ServiceResolver).
    Service {
        /// Registry name of the remote KG.
        kg: String,
        /// The group evaluated remotely.
        pattern: Box<GraphPattern>,
    },
}

impl GraphPattern {
    /// An empty basic graph pattern.
    pub fn empty() -> Self {
        GraphPattern::Bgp(Vec::new())
    }

    /// All triple patterns reachable in this graph pattern (used by query
    /// analysis and the benchmark taxonomy).
    pub fn all_triple_patterns(&self) -> Vec<&TriplePatternAst> {
        match self {
            GraphPattern::Bgp(tps) => tps.iter().collect(),
            GraphPattern::Join(a, b) | GraphPattern::Optional(a, b) | GraphPattern::Union(a, b) => {
                let mut v = a.all_triple_patterns();
                v.extend(b.all_triple_patterns());
                v
            }
            GraphPattern::Filter(inner, _) => inner.all_triple_patterns(),
            GraphPattern::Service { pattern, .. } => pattern.all_triple_patterns(),
        }
    }

    /// True if a `SERVICE` group appears anywhere in the pattern — such a
    /// query needs a service resolver to execute (see
    /// [`plan::Planner::with_services`](crate::plan::Planner::with_services)).
    pub fn has_service(&self) -> bool {
        match self {
            GraphPattern::Bgp(_) => false,
            GraphPattern::Join(a, b) | GraphPattern::Optional(a, b) | GraphPattern::Union(a, b) => {
                a.has_service() || b.has_service()
            }
            GraphPattern::Filter(inner, _) => inner.has_service(),
            GraphPattern::Service { .. } => true,
        }
    }

    /// Registry names of every `SERVICE` target in the pattern, in
    /// first-seen order with duplicates removed.
    pub fn service_targets(&self) -> Vec<&str> {
        fn walk<'a>(pattern: &'a GraphPattern, out: &mut Vec<&'a str>) {
            match pattern {
                GraphPattern::Bgp(_) => {}
                GraphPattern::Join(a, b)
                | GraphPattern::Optional(a, b)
                | GraphPattern::Union(a, b) => {
                    walk(a, out);
                    walk(b, out);
                }
                GraphPattern::Filter(inner, _) => walk(inner, out),
                GraphPattern::Service { kg, pattern } => {
                    if !out.contains(&kg.as_str()) {
                        out.push(kg);
                    }
                    walk(pattern, out);
                }
            }
        }
        let mut out = Vec::new();
        walk(self, &mut out);
        out
    }

    /// All variables mentioned anywhere in the pattern, in first-seen order.
    pub fn variables(&self) -> Vec<String> {
        let mut seen = Vec::new();
        for tp in self.all_triple_patterns() {
            for v in tp.variables() {
                if !seen.iter().any(|s| s == v) {
                    seen.push(v.to_string());
                }
            }
        }
        seen
    }
}

/// The query form: SELECT or ASK.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum QueryForm {
    /// `SELECT` with an explicit projection (empty = `SELECT *`).
    Select {
        /// Projected variable names; empty means all.
        variables: Vec<String>,
        /// Whether `DISTINCT` was specified.
        distinct: bool,
    },
    /// `ASK`.
    Ask,
}

/// A parsed SPARQL query.
///
/// The AST is `Eq + Hash` so that built queries can key caches directly
/// (see `kgqan-endpoint`'s `CachingEndpoint`) without a detour through
/// their serialized text.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Query {
    /// SELECT or ASK.
    pub form: QueryForm,
    /// The WHERE clause.
    pub pattern: GraphPattern,
    /// `LIMIT`, if present.
    pub limit: Option<usize>,
    /// `OFFSET`, if present.
    pub offset: Option<usize>,
}

impl Query {
    /// The variables this query projects (explicit list, or every variable in
    /// the pattern for `SELECT *` / ASK).
    pub fn projected_variables(&self) -> Vec<String> {
        match &self.form {
            QueryForm::Select { variables, .. } if !variables.is_empty() => variables.clone(),
            _ => self.pattern.variables(),
        }
    }

    /// True if this is an ASK query.
    pub fn is_ask(&self) -> bool {
        matches!(self.form, QueryForm::Ask)
    }

    /// Serialize the query back to SPARQL text.
    ///
    /// The output re-parses to an equal AST, so a [`Query`] built
    /// programmatically (e.g. KGQAn's candidate-query generator) can be
    /// shipped to a remote endpoint, while in-process endpoints execute the
    /// AST directly and skip the text round-trip entirely.
    pub fn to_sparql(&self) -> String {
        let mut out = String::new();
        match &self.form {
            QueryForm::Ask => out.push_str("ASK {\n"),
            QueryForm::Select {
                variables,
                distinct,
            } => {
                out.push_str("SELECT ");
                if *distinct {
                    out.push_str("DISTINCT ");
                }
                if variables.is_empty() {
                    out.push('*');
                } else {
                    for (i, v) in variables.iter().enumerate() {
                        if i > 0 {
                            out.push(' ');
                        }
                        out.push('?');
                        out.push_str(v);
                    }
                }
                out.push_str(" WHERE {\n");
            }
        }
        write_pattern(&self.pattern, &mut out, 1);
        out.push('}');
        if let Some(limit) = self.limit {
            out.push_str(&format!(" LIMIT {limit}"));
        }
        if let Some(offset) = self.offset {
            out.push_str(&format!(" OFFSET {offset}"));
        }
        out
    }
}

/// Append the body of a graph pattern to `out`, one clause per line.
fn write_pattern(pattern: &GraphPattern, out: &mut String, indent: usize) {
    let pad = "  ".repeat(indent);
    match pattern {
        GraphPattern::Bgp(tps) => {
            for tp in tps {
                out.push_str(&pad);
                out.push_str(&tp.to_string());
                out.push('\n');
            }
        }
        GraphPattern::Join(a, b) => {
            // Brace both sides: the parser folds a nested `{ ... }` group
            // into a Join with whatever precedes it, so this shape re-parses
            // to an equal Join node whatever the children are (bare triple
            // lines would merge into the surrounding BGP, and a child's
            // FILTER would get hoisted out of its group).
            for side in [a, b] {
                out.push_str(&format!("{pad}{{\n"));
                write_pattern(side, out, indent + 1);
                out.push_str(&format!("{pad}}}\n"));
            }
        }
        GraphPattern::Optional(a, b) => {
            write_pattern(a, out, indent);
            out.push_str(&format!("{pad}OPTIONAL {{\n"));
            write_pattern(b, out, indent + 1);
            out.push_str(&format!("{pad}}}\n"));
        }
        GraphPattern::Union(a, b) => {
            out.push_str(&format!("{pad}{{\n"));
            write_pattern(a, out, indent + 1);
            out.push_str(&format!("{pad}}} UNION {{\n"));
            write_pattern(b, out, indent + 1);
            out.push_str(&format!("{pad}}}\n"));
        }
        GraphPattern::Filter(inner, expr) => {
            write_pattern(inner, out, indent);
            out.push_str(&format!("{pad}FILTER ({expr})\n"));
        }
        GraphPattern::Service { kg, pattern } => {
            out.push_str(&format!("{pad}SERVICE <kg:{kg}> {{\n"));
            write_pattern(pattern, out, indent + 1);
            out.push_str(&format!("{pad}}}\n"));
        }
    }
}

impl std::fmt::Display for Query {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_sparql())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn var_or_term_accessors() {
        let v = VarOrTerm::var("sea");
        assert!(v.is_var());
        assert_eq!(v.as_var(), Some("sea"));
        assert!(v.as_term().is_none());
        assert_eq!(v.to_string(), "?sea");

        let t = VarOrTerm::iri("http://e/x");
        assert!(!t.is_var());
        assert_eq!(t.as_term(), Some(&Term::iri("http://e/x")));
        assert_eq!(t.to_string(), "<http://e/x>");
    }

    #[test]
    fn triple_pattern_variables_and_selectivity() {
        let tp = TriplePatternAst::new(
            VarOrTerm::var("s"),
            VarOrTerm::iri("http://e/p"),
            VarOrTerm::var("o"),
        );
        assert_eq!(tp.variables(), vec!["s", "o"]);
        assert_eq!(tp.bound_positions(), 1);
        assert_eq!(tp.to_string(), "?s <http://e/p> ?o .");
    }

    #[test]
    fn graph_pattern_collects_all_triples_and_vars() {
        let bgp1 = GraphPattern::Bgp(vec![TriplePatternAst::new(
            VarOrTerm::var("s"),
            VarOrTerm::iri("http://e/p"),
            VarOrTerm::var("o"),
        )]);
        let bgp2 = GraphPattern::Bgp(vec![TriplePatternAst::new(
            VarOrTerm::var("o"),
            VarOrTerm::iri("http://e/q"),
            VarOrTerm::var("z"),
        )]);
        let joined = GraphPattern::Optional(Box::new(bgp1), Box::new(bgp2));
        assert_eq!(joined.all_triple_patterns().len(), 2);
        assert_eq!(joined.variables(), vec!["s", "o", "z"]);
    }

    #[test]
    fn to_sparql_round_trips_through_parser() {
        let queries = [
            "SELECT DISTINCT ?sea ?type WHERE { \
               ?sea <http://dbpedia.org/property/outflow> <http://e/straits> . \
               OPTIONAL { ?sea a ?type . } } LIMIT 40 OFFSET 2",
            "ASK { <http://e/s> <http://e/p> <http://e/o> }",
            "SELECT * WHERE { { ?x <http://e/p> ?y . } UNION { ?x <http://e/q> ?y . } }",
            r#"SELECT ?s WHERE { ?s <http://e/p> ?l .
                FILTER (CONTAINS(?l, "sea") && (?pop > 100 || !BOUND(?t))) }"#,
            r#"SELECT ?s WHERE { ?s <http://e/p> ?l . FILTER (REGEX(STR(?l), "^x") || LANG(?l) != "en") }"#,
            // Nested groups parse to Join nodes; both sides must stay
            // distinct groups through serialization.
            "SELECT * WHERE { ?a <http://e/p> ?c . { ?d <http://e/q> ?f . } }",
            r#"SELECT * WHERE { { ?a <http://e/p> ?c . FILTER (?a != ?c) } { ?d <http://e/q> ?f . } }"#,
            // A federated group: the SERVICE target and inner pattern must
            // survive serialization unchanged.
            "SELECT ?p ?c WHERE { ?p <http://e/spouse> ?q . \
               SERVICE <kg:Wikidata> { ?q <http://e/birthPlace> ?c . } }",
        ];
        for q in queries {
            let parsed = crate::parser::parse_query(q).expect("test query parses");
            let rendered = parsed.to_sparql();
            let reparsed = crate::parser::parse_query(&rendered)
                .unwrap_or_else(|e| panic!("serialized query must re-parse: {e}\n{rendered}"));
            assert_eq!(parsed, reparsed, "round-trip changed the AST:\n{rendered}");
        }
    }

    #[test]
    fn expression_variables_are_collected_once_each() {
        let expr = Expression::And(
            Box::new(Expression::Gt(
                Box::new(Expression::Var("pop".into())),
                Box::new(Expression::Constant(Term::integer(5))),
            )),
            Box::new(Expression::Or(
                Box::new(Expression::Bound("t".into())),
                Box::new(Expression::Contains(
                    Box::new(Expression::Str(Box::new(Expression::Var("pop".into())))),
                    Box::new(Expression::Var("name".into())),
                )),
            )),
        );
        assert_eq!(expr.variables(), vec!["pop", "t", "name"]);
        assert!(Expression::Constant(Term::integer(1))
            .variables()
            .is_empty());
    }

    #[test]
    fn projected_variables_default_to_pattern_vars() {
        let q = Query {
            form: QueryForm::Select {
                variables: vec![],
                distinct: false,
            },
            pattern: GraphPattern::Bgp(vec![TriplePatternAst::new(
                VarOrTerm::var("a"),
                VarOrTerm::var("p"),
                VarOrTerm::var("b"),
            )]),
            limit: None,
            offset: None,
        };
        assert_eq!(q.projected_variables(), vec!["a", "p", "b"]);
        assert!(!q.is_ask());
    }
}
