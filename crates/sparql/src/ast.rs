//! Abstract syntax tree for the supported SPARQL subset.

use kgqan_rdf::Term;

/// Either a variable or a concrete RDF term — the possible values of a
/// triple-pattern position.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum VarOrTerm {
    /// A named variable (`?sea`), stored without the question mark.
    Var(String),
    /// A concrete term.
    Term(Term),
}

impl VarOrTerm {
    /// Construct a variable.
    pub fn var(name: impl Into<String>) -> Self {
        VarOrTerm::Var(name.into())
    }

    /// Construct a term.
    pub fn term(term: Term) -> Self {
        VarOrTerm::Term(term)
    }

    /// Construct an IRI term.
    pub fn iri(iri: impl Into<String>) -> Self {
        VarOrTerm::Term(Term::iri(iri))
    }

    /// The variable name, if this is a variable.
    pub fn as_var(&self) -> Option<&str> {
        match self {
            VarOrTerm::Var(v) => Some(v),
            VarOrTerm::Term(_) => None,
        }
    }

    /// The term, if this is a term.
    pub fn as_term(&self) -> Option<&Term> {
        match self {
            VarOrTerm::Var(_) => None,
            VarOrTerm::Term(t) => Some(t),
        }
    }

    /// True if this position is a variable.
    pub fn is_var(&self) -> bool {
        matches!(self, VarOrTerm::Var(_))
    }
}

impl std::fmt::Display for VarOrTerm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VarOrTerm::Var(v) => write!(f, "?{v}"),
            VarOrTerm::Term(t) => write!(f, "{t}"),
        }
    }
}

/// A triple pattern inside a WHERE clause.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TriplePatternAst {
    /// Subject position.
    pub subject: VarOrTerm,
    /// Predicate position.
    pub predicate: VarOrTerm,
    /// Object position.
    pub object: VarOrTerm,
}

impl TriplePatternAst {
    /// Construct a triple pattern.
    pub fn new(subject: VarOrTerm, predicate: VarOrTerm, object: VarOrTerm) -> Self {
        TriplePatternAst {
            subject,
            predicate,
            object,
        }
    }

    /// Variables mentioned in this pattern.
    pub fn variables(&self) -> Vec<&str> {
        [&self.subject, &self.predicate, &self.object]
            .into_iter()
            .filter_map(|x| x.as_var())
            .collect()
    }

    /// Number of non-variable positions — a crude selectivity proxy used for
    /// join ordering.
    pub fn bound_positions(&self) -> usize {
        [&self.subject, &self.predicate, &self.object]
            .into_iter()
            .filter(|x| !x.is_var())
            .count()
    }
}

impl std::fmt::Display for TriplePatternAst {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {} {} .", self.subject, self.predicate, self.object)
    }
}

/// A filter / value expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expression {
    /// A variable reference.
    Var(String),
    /// A constant term.
    Constant(Term),
    /// Equality.
    Eq(Box<Expression>, Box<Expression>),
    /// Inequality.
    Neq(Box<Expression>, Box<Expression>),
    /// Numeric/string less-than.
    Lt(Box<Expression>, Box<Expression>),
    /// Numeric/string greater-than.
    Gt(Box<Expression>, Box<Expression>),
    /// Numeric/string less-or-equal.
    Le(Box<Expression>, Box<Expression>),
    /// Numeric/string greater-or-equal.
    Ge(Box<Expression>, Box<Expression>),
    /// Logical conjunction.
    And(Box<Expression>, Box<Expression>),
    /// Logical disjunction.
    Or(Box<Expression>, Box<Expression>),
    /// Logical negation.
    Not(Box<Expression>),
    /// `CONTAINS(haystack, needle)` — case-insensitive substring test.
    Contains(Box<Expression>, Box<Expression>),
    /// `REGEX(text, pattern)` — substring / anchored-lite matching.
    Regex(Box<Expression>, Box<Expression>),
    /// `LANG(?x)` — language tag of a literal.
    Lang(Box<Expression>),
    /// `STR(?x)` — lexical form of a term.
    Str(Box<Expression>),
    /// `BOUND(?x)` — whether the variable is bound.
    Bound(String),
}

/// A graph pattern: the contents of a `{ ... }` group.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphPattern {
    /// A basic graph pattern: a conjunction of triple patterns.
    Bgp(Vec<TriplePatternAst>),
    /// Sequential join of two patterns.
    Join(Box<GraphPattern>, Box<GraphPattern>),
    /// `OPTIONAL` — left outer join.
    Optional(Box<GraphPattern>, Box<GraphPattern>),
    /// `FILTER` applied to an inner pattern.
    Filter(Box<GraphPattern>, Expression),
    /// `UNION` of two patterns.
    Union(Box<GraphPattern>, Box<GraphPattern>),
}

impl GraphPattern {
    /// An empty basic graph pattern.
    pub fn empty() -> Self {
        GraphPattern::Bgp(Vec::new())
    }

    /// All triple patterns reachable in this graph pattern (used by query
    /// analysis and the benchmark taxonomy).
    pub fn all_triple_patterns(&self) -> Vec<&TriplePatternAst> {
        match self {
            GraphPattern::Bgp(tps) => tps.iter().collect(),
            GraphPattern::Join(a, b) | GraphPattern::Optional(a, b) | GraphPattern::Union(a, b) => {
                let mut v = a.all_triple_patterns();
                v.extend(b.all_triple_patterns());
                v
            }
            GraphPattern::Filter(inner, _) => inner.all_triple_patterns(),
        }
    }

    /// All variables mentioned anywhere in the pattern, in first-seen order.
    pub fn variables(&self) -> Vec<String> {
        let mut seen = Vec::new();
        for tp in self.all_triple_patterns() {
            for v in tp.variables() {
                if !seen.iter().any(|s| s == v) {
                    seen.push(v.to_string());
                }
            }
        }
        seen
    }
}

/// The query form: SELECT or ASK.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryForm {
    /// `SELECT` with an explicit projection (empty = `SELECT *`).
    Select {
        /// Projected variable names; empty means all.
        variables: Vec<String>,
        /// Whether `DISTINCT` was specified.
        distinct: bool,
    },
    /// `ASK`.
    Ask,
}

/// A parsed SPARQL query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// SELECT or ASK.
    pub form: QueryForm,
    /// The WHERE clause.
    pub pattern: GraphPattern,
    /// `LIMIT`, if present.
    pub limit: Option<usize>,
    /// `OFFSET`, if present.
    pub offset: Option<usize>,
}

impl Query {
    /// The variables this query projects (explicit list, or every variable in
    /// the pattern for `SELECT *` / ASK).
    pub fn projected_variables(&self) -> Vec<String> {
        match &self.form {
            QueryForm::Select { variables, .. } if !variables.is_empty() => variables.clone(),
            _ => self.pattern.variables(),
        }
    }

    /// True if this is an ASK query.
    pub fn is_ask(&self) -> bool {
        matches!(self.form, QueryForm::Ask)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn var_or_term_accessors() {
        let v = VarOrTerm::var("sea");
        assert!(v.is_var());
        assert_eq!(v.as_var(), Some("sea"));
        assert!(v.as_term().is_none());
        assert_eq!(v.to_string(), "?sea");

        let t = VarOrTerm::iri("http://e/x");
        assert!(!t.is_var());
        assert_eq!(t.as_term(), Some(&Term::iri("http://e/x")));
        assert_eq!(t.to_string(), "<http://e/x>");
    }

    #[test]
    fn triple_pattern_variables_and_selectivity() {
        let tp = TriplePatternAst::new(
            VarOrTerm::var("s"),
            VarOrTerm::iri("http://e/p"),
            VarOrTerm::var("o"),
        );
        assert_eq!(tp.variables(), vec!["s", "o"]);
        assert_eq!(tp.bound_positions(), 1);
        assert_eq!(tp.to_string(), "?s <http://e/p> ?o .");
    }

    #[test]
    fn graph_pattern_collects_all_triples_and_vars() {
        let bgp1 = GraphPattern::Bgp(vec![TriplePatternAst::new(
            VarOrTerm::var("s"),
            VarOrTerm::iri("http://e/p"),
            VarOrTerm::var("o"),
        )]);
        let bgp2 = GraphPattern::Bgp(vec![TriplePatternAst::new(
            VarOrTerm::var("o"),
            VarOrTerm::iri("http://e/q"),
            VarOrTerm::var("z"),
        )]);
        let joined = GraphPattern::Optional(Box::new(bgp1), Box::new(bgp2));
        assert_eq!(joined.all_triple_patterns().len(), 2);
        assert_eq!(joined.variables(), vec!["s", "o", "z"]);
    }

    #[test]
    fn projected_variables_default_to_pattern_vars() {
        let q = Query {
            form: QueryForm::Select {
                variables: vec![],
                distinct: false,
            },
            pattern: GraphPattern::Bgp(vec![TriplePatternAst::new(
                VarOrTerm::var("a"),
                VarOrTerm::var("p"),
                VarOrTerm::var("b"),
            )]),
            limit: None,
            offset: None,
        };
        assert_eq!(q.projected_variables(), vec!["a", "p", "b"]);
        assert!(!q.is_ask());
    }
}
