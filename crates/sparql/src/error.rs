//! Errors produced by the SPARQL lexer, parser and evaluator.

use std::fmt;

/// Errors produced while lexing, parsing or evaluating a SPARQL query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SparqlError {
    /// The query text could not be tokenized.
    Lex {
        /// Byte position of the offending character.
        position: usize,
        /// Description of what went wrong.
        message: String,
    },
    /// The token stream did not form a valid query.
    Parse {
        /// Description of what went wrong, including what was expected.
        message: String,
    },
    /// A prefixed name used an undeclared prefix.
    UnknownPrefix(String),
    /// The query used a feature outside the supported subset.
    Unsupported(String),
    /// A filter expression could not be evaluated.
    Evaluation(String),
}

impl fmt::Display for SparqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparqlError::Lex { position, message } => {
                write!(f, "lexical error at byte {position}: {message}")
            }
            SparqlError::Parse { message } => write!(f, "parse error: {message}"),
            SparqlError::UnknownPrefix(p) => write!(f, "unknown prefix: {p}"),
            SparqlError::Unsupported(s) => write!(f, "unsupported SPARQL feature: {s}"),
            SparqlError::Evaluation(s) => write!(f, "evaluation error: {s}"),
        }
    }
}

impl std::error::Error for SparqlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(SparqlError::Lex {
            position: 3,
            message: "bad char".into()
        }
        .to_string()
        .contains("byte 3"));
        assert!(SparqlError::Parse {
            message: "expected WHERE".into()
        }
        .to_string()
        .contains("expected WHERE"));
        assert!(SparqlError::UnknownPrefix("dbx".into())
            .to_string()
            .contains("dbx"));
        assert!(SparqlError::Unsupported("CONSTRUCT".into())
            .to_string()
            .contains("CONSTRUCT"));
        assert!(SparqlError::Evaluation("type mismatch".into())
            .to_string()
            .contains("type"));
    }
}
