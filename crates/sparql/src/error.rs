//! Errors produced by the SPARQL lexer, parser and evaluator.

use std::fmt;

/// Errors produced while lexing, parsing or evaluating a SPARQL query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SparqlError {
    /// The query text could not be tokenized.
    Lex {
        /// Byte position of the offending character.
        position: usize,
        /// Description of what went wrong.
        message: String,
    },
    /// The token stream did not form a valid query.
    Parse {
        /// Description of what went wrong, including what was expected.
        message: String,
    },
    /// A prefixed name used an undeclared prefix.
    UnknownPrefix(String),
    /// The query used a feature outside the supported subset.
    Unsupported(String),
    /// A filter expression could not be evaluated.
    Evaluation(String),
    /// A `SERVICE <kg:name>` group named a KG the resolver does not know.
    UnknownService {
        /// The KG name the query asked for.
        kg: String,
        /// The KG names the resolver does know, for the error message.
        available: Vec<String>,
    },
    /// Executing a `SERVICE <kg:name>` group against the remote KG failed.
    Service {
        /// The KG the group targeted.
        kg: String,
        /// Description of what went wrong.
        message: String,
    },
}

impl fmt::Display for SparqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparqlError::Lex { position, message } => {
                write!(f, "lexical error at byte {position}: {message}")
            }
            SparqlError::Parse { message } => write!(f, "parse error: {message}"),
            SparqlError::UnknownPrefix(p) => write!(f, "unknown prefix: {p}"),
            SparqlError::Unsupported(s) => write!(f, "unsupported SPARQL feature: {s}"),
            SparqlError::Evaluation(s) => write!(f, "evaluation error: {s}"),
            SparqlError::UnknownService { kg, available } => {
                write!(
                    f,
                    "SERVICE targets unknown KG '{kg}' (available: {})",
                    available.join(", ")
                )
            }
            SparqlError::Service { kg, message } => {
                write!(f, "SERVICE <kg:{kg}> failed: {message}")
            }
        }
    }
}

impl std::error::Error for SparqlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(SparqlError::Lex {
            position: 3,
            message: "bad char".into()
        }
        .to_string()
        .contains("byte 3"));
        assert!(SparqlError::Parse {
            message: "expected WHERE".into()
        }
        .to_string()
        .contains("expected WHERE"));
        assert!(SparqlError::UnknownPrefix("dbx".into())
            .to_string()
            .contains("dbx"));
        assert!(SparqlError::Unsupported("CONSTRUCT".into())
            .to_string()
            .contains("CONSTRUCT"));
        assert!(SparqlError::Evaluation("type mismatch".into())
            .to_string()
            .contains("type"));
        let unknown = SparqlError::UnknownService {
            kg: "YAGO".into(),
            available: vec!["DBpedia".into(), "Wikidata".into()],
        }
        .to_string();
        assert!(unknown.contains("YAGO") && unknown.contains("DBpedia, Wikidata"));
        assert!(SparqlError::Service {
            kg: "Wikidata".into(),
            message: "deadline expired".into()
        }
        .to_string()
        .contains("kg:Wikidata"));
    }
}
