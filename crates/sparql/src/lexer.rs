//! Tokenizer for the supported SPARQL subset.

use crate::error::SparqlError;

/// A SPARQL token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// A keyword such as `SELECT`, `WHERE`, `OPTIONAL` (stored uppercase).
    Keyword(String),
    /// A variable, e.g. `?sea` (stored without the `?`/`$`).
    Variable(String),
    /// An IRI in angle brackets, stored without the brackets.
    Iri(String),
    /// A prefixed name `prefix:local` (prefix may be empty).
    PrefixedName(String, String),
    /// A string literal with optional language tag or datatype.
    Literal {
        /// The unescaped lexical form.
        value: String,
        /// Language tag, if any.
        language: Option<String>,
        /// Datatype: either an absolute IRI or a prefixed name to resolve.
        datatype: Option<DatatypeRef>,
    },
    /// An integer or decimal numeric literal in source form.
    Numeric(String),
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `.`
    Dot,
    /// `;`
    Semicolon,
    /// `,`
    Comma,
    /// `*`
    Star,
    /// `=`
    Eq,
    /// `!=`
    Neq,
    /// `<` used as an operator inside expressions
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `&&`
    And,
    /// `||`
    Or,
    /// `!`
    Not,
    /// `a` — shorthand for `rdf:type`
    A,
}

/// A datatype reference attached to a literal token.
#[derive(Debug, Clone, PartialEq)]
pub enum DatatypeRef {
    /// `^^<http://...>`
    Iri(String),
    /// `^^xsd:integer`
    Prefixed(String, String),
}

/// Keywords recognised by the parser (matched case-insensitively).
const KEYWORDS: &[&str] = &[
    "SELECT",
    "ASK",
    "WHERE",
    "DISTINCT",
    "LIMIT",
    "OFFSET",
    "OPTIONAL",
    "FILTER",
    "PREFIX",
    "UNION",
    "ORDER",
    "BY",
    "CONTAINS",
    "REGEX",
    "LANG",
    "LANGMATCHES",
    "STR",
    "BOUND",
    "TRUE",
    "FALSE",
    "COUNT",
    "AS",
    "SERVICE",
];

/// Tokenize a SPARQL query string.
pub fn tokenize(input: &str) -> Result<Vec<Token>, SparqlError> {
    let bytes: Vec<char> = input.chars().collect();
    let mut tokens = Vec::new();
    let mut i = 0usize;

    while i < bytes.len() {
        let c = bytes[i];
        match c {
            c if c.is_whitespace() => i += 1,
            '#' => {
                while i < bytes.len() && bytes[i] != '\n' {
                    i += 1;
                }
            }
            '{' => {
                tokens.push(Token::LBrace);
                i += 1;
            }
            '}' => {
                tokens.push(Token::RBrace);
                i += 1;
            }
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            '.' => {
                tokens.push(Token::Dot);
                i += 1;
            }
            ';' => {
                tokens.push(Token::Semicolon);
                i += 1;
            }
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            '*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            '=' => {
                tokens.push(Token::Eq);
                i += 1;
            }
            '&' => {
                if bytes.get(i + 1) == Some(&'&') {
                    tokens.push(Token::And);
                    i += 2;
                } else {
                    return Err(SparqlError::Lex {
                        position: i,
                        message: "expected '&&'".into(),
                    });
                }
            }
            '|' => {
                if bytes.get(i + 1) == Some(&'|') {
                    tokens.push(Token::Or);
                    i += 2;
                } else {
                    return Err(SparqlError::Lex {
                        position: i,
                        message: "expected '||'".into(),
                    });
                }
            }
            '!' => {
                if bytes.get(i + 1) == Some(&'=') {
                    tokens.push(Token::Neq);
                    i += 2;
                } else {
                    tokens.push(Token::Not);
                    i += 1;
                }
            }
            '<' => {
                // Either an IRI (no whitespace until '>') or the < operator.
                if let Some((iri, next)) = scan_iri(&bytes, i) {
                    tokens.push(Token::Iri(iri));
                    i = next;
                } else if bytes.get(i + 1) == Some(&'=') {
                    tokens.push(Token::Le);
                    i += 2;
                } else {
                    tokens.push(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&'=') {
                    tokens.push(Token::Ge);
                    i += 2;
                } else {
                    tokens.push(Token::Gt);
                    i += 1;
                }
            }
            '?' | '$' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && (bytes[j].is_alphanumeric() || bytes[j] == '_') {
                    j += 1;
                }
                if j == start {
                    return Err(SparqlError::Lex {
                        position: i,
                        message: "empty variable name".into(),
                    });
                }
                tokens.push(Token::Variable(bytes[start..j].iter().collect()));
                i = j;
            }
            '"' | '\'' => {
                let (token, next) = scan_literal(&bytes, i)?;
                tokens.push(token);
                i = next;
            }
            c if c.is_ascii_digit()
                || (c == '-' && bytes.get(i + 1).is_some_and(|d| d.is_ascii_digit())) =>
            {
                let start = i;
                let mut j = i + 1;
                while j < bytes.len() && (bytes[j].is_ascii_digit() || bytes[j] == '.') {
                    // A trailing dot is the statement terminator, not part of
                    // the number, unless followed by a digit.
                    if bytes[j] == '.' && !bytes.get(j + 1).is_some_and(|d| d.is_ascii_digit()) {
                        break;
                    }
                    j += 1;
                }
                tokens.push(Token::Numeric(bytes[start..j].iter().collect()));
                i = j;
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                let mut j = i;
                while j < bytes.len()
                    && (bytes[j].is_alphanumeric() || bytes[j] == '_' || bytes[j] == '-')
                {
                    j += 1;
                }
                let word: String = bytes[start..j].iter().collect();
                // Prefixed name?
                if bytes.get(j) == Some(&':') {
                    let local_start = j + 1;
                    let mut k = local_start;
                    while k < bytes.len()
                        && (bytes[k].is_alphanumeric()
                            || bytes[k] == '_'
                            || bytes[k] == '-'
                            || bytes[k] == ','
                            || bytes[k] == '.')
                    {
                        k += 1;
                    }
                    // Trailing dot belongs to the statement, not the local name.
                    let mut local_end = k;
                    while local_end > local_start && bytes[local_end - 1] == '.' {
                        local_end -= 1;
                    }
                    let local: String = bytes[local_start..local_end].iter().collect();
                    tokens.push(Token::PrefixedName(word, local));
                    i = local_end;
                    continue;
                }
                let upper = word.to_ascii_uppercase();
                if word == "a" {
                    tokens.push(Token::A);
                } else if KEYWORDS.contains(&upper.as_str()) {
                    tokens.push(Token::Keyword(upper));
                } else {
                    // Bare word outside a prefixed name: treat as a parse-level
                    // problem, but surface it as a keyword so the parser can
                    // produce a targeted message.
                    tokens.push(Token::Keyword(upper));
                }
                i = j;
            }
            ':' => {
                // Prefixed name with empty prefix (":local").
                let local_start = i + 1;
                let mut k = local_start;
                while k < bytes.len()
                    && (bytes[k].is_alphanumeric() || bytes[k] == '_' || bytes[k] == '-')
                {
                    k += 1;
                }
                let local: String = bytes[local_start..k].iter().collect();
                tokens.push(Token::PrefixedName(String::new(), local));
                i = k;
            }
            other => {
                return Err(SparqlError::Lex {
                    position: i,
                    message: format!("unexpected character '{other}'"),
                })
            }
        }
    }
    Ok(tokens)
}

/// Scan an IRIREF starting at `start` (which must be '<').  Returns `None`
/// if the text does not look like an IRI (so '<' is the comparison operator).
fn scan_iri(chars: &[char], start: usize) -> Option<(String, usize)> {
    let mut j = start + 1;
    let mut iri = String::new();
    while j < chars.len() {
        let c = chars[j];
        if c == '>' {
            return Some((iri, j + 1));
        }
        if c.is_whitespace() || c == '<' || c == '{' || c == '}' {
            return None;
        }
        iri.push(c);
        j += 1;
    }
    None
}

/// Scan a quoted string literal with optional `@lang` or `^^datatype` suffix.
fn scan_literal(chars: &[char], start: usize) -> Result<(Token, usize), SparqlError> {
    let quote = chars[start];
    let mut j = start + 1;
    let mut value = String::new();
    let mut closed = false;
    while j < chars.len() {
        let c = chars[j];
        if c == '\\' {
            if let Some(&next) = chars.get(j + 1) {
                value.push(match next {
                    'n' => '\n',
                    't' => '\t',
                    'r' => '\r',
                    other => other,
                });
                j += 2;
                continue;
            }
        }
        if c == quote {
            closed = true;
            j += 1;
            break;
        }
        value.push(c);
        j += 1;
    }
    if !closed {
        return Err(SparqlError::Lex {
            position: start,
            message: "unterminated string literal".into(),
        });
    }
    // Optional language tag.
    if chars.get(j) == Some(&'@') {
        let lang_start = j + 1;
        let mut k = lang_start;
        while k < chars.len() && (chars[k].is_alphanumeric() || chars[k] == '-') {
            k += 1;
        }
        let language: String = chars[lang_start..k].iter().collect();
        return Ok((
            Token::Literal {
                value,
                language: Some(language),
                datatype: None,
            },
            k,
        ));
    }
    // Optional datatype.
    if chars.get(j) == Some(&'^') && chars.get(j + 1) == Some(&'^') {
        let dt_start = j + 2;
        if chars.get(dt_start) == Some(&'<') {
            if let Some((iri, next)) = scan_iri(chars, dt_start) {
                return Ok((
                    Token::Literal {
                        value,
                        language: None,
                        datatype: Some(DatatypeRef::Iri(iri)),
                    },
                    next,
                ));
            }
            return Err(SparqlError::Lex {
                position: dt_start,
                message: "malformed datatype IRI".into(),
            });
        }
        // prefixed datatype
        let mut k = dt_start;
        while k < chars.len() && (chars[k].is_alphanumeric() || chars[k] == '_') {
            k += 1;
        }
        if chars.get(k) == Some(&':') {
            let prefix: String = chars[dt_start..k].iter().collect();
            let local_start = k + 1;
            let mut m = local_start;
            while m < chars.len() && (chars[m].is_alphanumeric() || chars[m] == '_') {
                m += 1;
            }
            let local: String = chars[local_start..m].iter().collect();
            return Ok((
                Token::Literal {
                    value,
                    language: None,
                    datatype: Some(DatatypeRef::Prefixed(prefix, local)),
                },
                m,
            ));
        }
        return Err(SparqlError::Lex {
            position: dt_start,
            message: "malformed datatype".into(),
        });
    }
    Ok((
        Token::Literal {
            value,
            language: None,
            datatype: None,
        },
        j,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_simple_select() {
        let toks = tokenize("SELECT ?sea WHERE { ?sea <http://e/p> \"x\" . }").unwrap();
        assert_eq!(toks[0], Token::Keyword("SELECT".into()));
        assert_eq!(toks[1], Token::Variable("sea".into()));
        assert_eq!(toks[2], Token::Keyword("WHERE".into()));
        assert_eq!(toks[3], Token::LBrace);
        assert!(matches!(toks[5], Token::Iri(ref iri) if iri == "http://e/p"));
        assert!(matches!(toks[6], Token::Literal { ref value, .. } if value == "x"));
        assert_eq!(toks[7], Token::Dot);
        assert_eq!(toks[8], Token::RBrace);
    }

    #[test]
    fn tokenizes_prefixed_names_and_a() {
        let toks = tokenize("?s a dbo:Sea").unwrap();
        assert_eq!(toks[1], Token::A);
        assert_eq!(toks[2], Token::PrefixedName("dbo".into(), "Sea".into()));
    }

    #[test]
    fn prefixed_name_with_trailing_dot_leaves_dot_as_terminator() {
        let toks = tokenize("?s dbo:spouse dbr:Diana .").unwrap();
        assert_eq!(toks[2], Token::PrefixedName("dbr".into(), "Diana".into()));
        assert_eq!(*toks.last().unwrap(), Token::Dot);
    }

    #[test]
    fn tokenizes_typed_and_lang_literals() {
        let toks = tokenize(
            r#""Baltic Sea"@en "42"^^<http://www.w3.org/2001/XMLSchema#integer> "3"^^xsd:integer"#,
        )
        .unwrap();
        assert!(matches!(
            &toks[0],
            Token::Literal { value, language: Some(lang), .. } if value == "Baltic Sea" && lang == "en"
        ));
        assert!(matches!(
            &toks[1],
            Token::Literal { datatype: Some(DatatypeRef::Iri(dt)), .. } if dt.ends_with("integer")
        ));
        assert!(matches!(
            &toks[2],
            Token::Literal { datatype: Some(DatatypeRef::Prefixed(p, l)), .. } if p == "xsd" && l == "integer"
        ));
    }

    #[test]
    fn tokenizes_filter_operators() {
        let toks = tokenize("FILTER (?x >= 10 && ?y != ?z || !(?w < 3))").unwrap();
        assert!(toks.contains(&Token::Ge));
        assert!(toks.contains(&Token::And));
        assert!(toks.contains(&Token::Neq));
        assert!(toks.contains(&Token::Or));
        assert!(toks.contains(&Token::Not));
        assert!(toks.contains(&Token::Lt));
    }

    #[test]
    fn tokenizes_numbers_before_statement_dot() {
        let toks = tokenize("?x ?p 42 . ?y ?q 3.5 .").unwrap();
        assert!(toks.contains(&Token::Numeric("42".into())));
        assert!(toks.contains(&Token::Numeric("3.5".into())));
        assert_eq!(toks.iter().filter(|t| **t == Token::Dot).count(), 2);
    }

    #[test]
    fn comments_are_skipped() {
        let toks = tokenize("# a comment\nSELECT ?x WHERE { }").unwrap();
        assert_eq!(toks[0], Token::Keyword("SELECT".into()));
    }

    #[test]
    fn unterminated_literal_is_an_error() {
        assert!(tokenize("\"oops").is_err());
    }

    #[test]
    fn unexpected_character_is_an_error() {
        assert!(tokenize("SELECT @").is_err());
    }

    #[test]
    fn bif_contains_iri_form_is_lexed_as_iri() {
        let toks = tokenize("?d <bif:contains> \"'danish' OR 'straits'\"").unwrap();
        assert!(matches!(&toks[1], Token::Iri(iri) if iri == "bif:contains"));
    }
}
