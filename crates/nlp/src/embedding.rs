//! Word, character and sentence embeddings.
//!
//! Substitutes for the embedding models of the paper:
//!
//! * [`WordEmbedding`] — the FastText `wiki-news-300d-1M` substitute: a
//!   deterministic hashed random projection seeded by the synonym lexicon,
//!   so that words in the same topic group are close in cosine space,
//! * [`CharNgramEmbedding`] — the chars2vec substitute used for
//!   out-of-vocabulary words: character trigram hashing, so that similar
//!   spellings ("Kaliningrad" / "Kaliningrd") are close,
//! * [`SentenceEmbedder`] — the GPT-3 sentence-embedding substitute used by
//!   the coarse-grained affinity variant of Table 4: a mean-pooled bag of
//!   word vectors.
//!
//! All vectors are L2-normalised so cosine similarity is a plain dot product.

use crate::synonyms::group_of;
use crate::tokenizer::{is_stop_word, tokenize_question};

/// Dimensionality of all embeddings in this crate.
pub const EMBEDDING_DIM: usize = 64;

/// A dense vector.
pub type Vector = Vec<f32>;

/// Deterministic pseudo-random stream from a string seed (splitmix64 over a
/// FNV-1a hash).  Keeps the embeddings reproducible across runs without
/// depending on a random-number crate at run time.
fn seeded_values(seed: &str, n: usize) -> Vec<f32> {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in seed.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    let mut out = Vec::with_capacity(n);
    let mut state = h;
    for _ in 0..n {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        // Map to [-1, 1).
        out.push((z as f64 / u64::MAX as f64 * 2.0 - 1.0) as f32);
    }
    out
}

fn l2_normalize(v: &mut [f32]) {
    let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    if norm > 0.0 {
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
}

/// Cosine similarity between two vectors (assumed same length).
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
    let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

/// Word-level embedding model (FastText substitute).
///
/// A word's vector is the sum of (i) a strong component shared by its
/// synonym-lexicon topic group, if it belongs to one, and (ii) a weaker
/// word-specific hashed component.  Words outside the lexicon get only the
/// word-specific component, so unrelated words have near-zero similarity,
/// while same-group words have high similarity — the ranking property the
/// JIT linker needs.
#[derive(Debug, Default, Clone)]
pub struct WordEmbedding;

impl WordEmbedding {
    /// Create the model (stateless; vectors are derived on demand).
    pub fn new() -> Self {
        WordEmbedding
    }

    /// True if the word is "in vocabulary": alphabetic and at least two
    /// characters.  Mirrors FastText's behaviour of covering ordinary English
    /// words; identifiers and codes fall through to the char model.
    pub fn knows(&self, word: &str) -> bool {
        word.len() >= 2 && word.chars().all(|c| c.is_alphabetic())
    }

    /// The embedding of a single (lowercase) word.
    pub fn embed(&self, word: &str) -> Vector {
        let lower = word.to_lowercase();
        let stem = stem(&lower);
        let mut v = vec![0.0f32; EMBEDDING_DIM];
        // Topic-group component (strong).
        if let Some(group) = group_of(&lower).or_else(|| group_of(&stem)) {
            let group_vec = seeded_values(&format!("group:{group}"), EMBEDDING_DIM);
            for (x, g) in v.iter_mut().zip(&group_vec) {
                *x += 2.0 * g;
            }
        }
        // Stem-specific component (medium) ties inflected forms together.
        let stem_vec = seeded_values(&format!("stem:{stem}"), EMBEDDING_DIM);
        for (x, s) in v.iter_mut().zip(&stem_vec) {
            *x += 1.0 * s;
        }
        // Surface-specific component (weak).
        let word_vec = seeded_values(&format!("word:{lower}"), EMBEDDING_DIM);
        for (x, w) in v.iter_mut().zip(&word_vec) {
            *x += 0.25 * w;
        }
        l2_normalize(&mut v);
        v
    }
}

/// A crude Porter-lite stemmer: strips common English suffixes so that
/// "flows"/"flowing"/"flowed" share a stem.
pub fn stem(word: &str) -> String {
    let w = word.to_lowercase();
    for suffix in [
        "ations", "ation", "ings", "ing", "ies", "ied", "ers", "er", "ed", "es", "s",
    ] {
        if let Some(base) = w.strip_suffix(suffix) {
            if base.len() >= 3 {
                return base.to_string();
            }
        }
    }
    w
}

/// Character n-gram embedding (chars2vec substitute): the normalised sum of
/// hashed character trigrams of the padded word.  Captures spelling
/// similarity for names and identifiers FastText does not know.
#[derive(Debug, Default, Clone)]
pub struct CharNgramEmbedding;

impl CharNgramEmbedding {
    /// Create the model.
    pub fn new() -> Self {
        CharNgramEmbedding
    }

    /// The embedding of a word based on its character trigrams.
    pub fn embed(&self, word: &str) -> Vector {
        let padded: Vec<char> = format!("^{}$", word.to_lowercase()).chars().collect();
        let mut v = vec![0.0f32; EMBEDDING_DIM];
        if padded.len() < 3 {
            let only = seeded_values(&format!("char:{}", word.to_lowercase()), EMBEDDING_DIM);
            v.copy_from_slice(&only);
            l2_normalize(&mut v);
            return v;
        }
        for window in padded.windows(3) {
            let gram: String = window.iter().collect();
            let gram_vec = seeded_values(&format!("3gram:{gram}"), EMBEDDING_DIM);
            for (x, g) in v.iter_mut().zip(&gram_vec) {
                *x += g;
            }
        }
        l2_normalize(&mut v);
        v
    }
}

/// The combined provider used by the semantic-affinity calculation (§5.4):
/// word vectors for in-vocabulary words, character vectors otherwise, and
/// `sim = 0` across the two spaces, exactly as Equation 1 specifies.
#[derive(Debug, Default, Clone)]
pub struct EmbeddingProvider {
    words: WordEmbedding,
    chars: CharNgramEmbedding,
}

/// An embedding together with which model produced it.
#[derive(Debug, Clone, PartialEq)]
pub enum SpaceVector {
    /// Produced by the word model.
    Word(Vector),
    /// Produced by the character model (OOV fallback).
    Char(Vector),
}

impl EmbeddingProvider {
    /// Create a provider with both models.
    pub fn new() -> Self {
        Self::default()
    }

    /// Embed one word, choosing the model per the OOV rule.
    pub fn embed_word(&self, word: &str) -> SpaceVector {
        if self.words.knows(word) {
            SpaceVector::Word(self.words.embed(word))
        } else {
            SpaceVector::Char(self.chars.embed(word))
        }
    }

    /// Embed every content word of a phrase.
    pub fn embed_phrase(&self, phrase: &str) -> Vec<SpaceVector> {
        tokenize_question(phrase)
            .into_iter()
            .filter(|t| !is_stop_word(&t.lower))
            .map(|t| self.embed_word(&t.lower))
            .collect()
    }

    /// Pairwise similarity honouring the cross-space rule of Equation 1:
    /// vectors from different models have similarity 0.
    pub fn pair_similarity(a: &SpaceVector, b: &SpaceVector) -> f32 {
        match (a, b) {
            (SpaceVector::Word(x), SpaceVector::Word(y)) => cosine(x, y),
            (SpaceVector::Char(x), SpaceVector::Char(y)) => cosine(x, y),
            _ => 0.0,
        }
    }
}

/// Sentence embedding (GPT-3 coarse-grained substitute): mean pooling of
/// word vectors over content words, with the char model for OOV words pooled
/// into the same vector (losing the cross-space distinction — which is why
/// the coarse-grained variant degrades on identifier-heavy KGs, Table 4).
#[derive(Debug, Default, Clone)]
pub struct SentenceEmbedder {
    words: WordEmbedding,
    chars: CharNgramEmbedding,
}

impl SentenceEmbedder {
    /// Create the sentence embedder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Embed an entire phrase into a single vector.
    pub fn embed(&self, phrase: &str) -> Vector {
        let mut v = vec![0.0f32; EMBEDDING_DIM];
        let mut count = 0usize;
        for token in tokenize_question(phrase) {
            if is_stop_word(&token.lower) {
                continue;
            }
            let wv = if self.words.knows(&token.lower) {
                self.words.embed(&token.lower)
            } else {
                self.chars.embed(&token.lower)
            };
            for (x, y) in v.iter_mut().zip(&wv) {
                *x += y;
            }
            count += 1;
        }
        if count > 0 {
            for x in v.iter_mut() {
                *x /= count as f32;
            }
        }
        l2_normalize(&mut v);
        v
    }

    /// Cosine similarity of two phrases in the sentence space.
    pub fn similarity(&self, a: &str, b: &str) -> f32 {
        cosine(&self.embed(a), &self.embed(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn embeddings_are_deterministic_and_normalised() {
        let model = WordEmbedding::new();
        let a = model.embed("sea");
        let b = model.embed("sea");
        assert_eq!(a, b);
        let norm: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-4);
        assert_eq!(a.len(), EMBEDDING_DIM);
    }

    #[test]
    fn synonyms_are_closer_than_unrelated_words() {
        let model = WordEmbedding::new();
        let wife = model.embed("wife");
        let spouse = model.embed("spouse");
        let river = model.embed("river");
        assert!(cosine(&wife, &spouse) > 0.6, "synonyms should be close");
        assert!(cosine(&wife, &spouse) > cosine(&wife, &river) + 0.3);
    }

    #[test]
    fn paper_examples_rank_correctly() {
        let model = WordEmbedding::new();
        // "flow" should be closer to "outflow" than to "cities".
        let flow = model.embed("flow");
        assert!(cosine(&flow, &model.embed("outflow")) > cosine(&flow, &model.embed("cities")));
        // "shore" closer to "nearest" (nearestCity) than to "country".
        let shore = model.embed("shore");
        assert!(cosine(&shore, &model.embed("nearest")) > cosine(&shore, &model.embed("country")));
    }

    #[test]
    fn inflected_forms_share_similarity_via_stemming() {
        let model = WordEmbedding::new();
        assert!(cosine(&model.embed("flows"), &model.embed("flow")) > 0.5);
        assert!(cosine(&model.embed("cities"), &model.embed("city")) > 0.3);
    }

    #[test]
    fn identical_words_have_similarity_one() {
        let model = WordEmbedding::new();
        let v = model.embed("kaliningrad");
        assert!((cosine(&v, &v) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn char_embedding_captures_spelling_similarity() {
        let chars = CharNgramEmbedding::new();
        let a = chars.embed("kaliningrad");
        let b = chars.embed("kaliningrd"); // typo
        let c = chars.embed("melbourne");
        assert!(cosine(&a, &b) > cosine(&a, &c));
        assert!(cosine(&a, &b) > 0.6);
    }

    #[test]
    fn char_embedding_handles_short_and_numeric_strings() {
        let chars = CharNgramEmbedding::new();
        let a = chars.embed("x");
        assert_eq!(a.len(), EMBEDDING_DIM);
        let b = chars.embed("2279569217");
        let c = chars.embed("2279569218");
        assert!(cosine(&b, &c) > 0.5, "near-identical ids share trigrams");
    }

    #[test]
    fn provider_routes_oov_words_to_char_space() {
        let provider = EmbeddingProvider::new();
        assert!(matches!(provider.embed_word("sea"), SpaceVector::Word(_)));
        assert!(matches!(provider.embed_word("p227"), SpaceVector::Char(_)));
        assert!(matches!(
            provider.embed_word("2279569217"),
            SpaceVector::Char(_)
        ));
    }

    #[test]
    fn cross_space_similarity_is_zero() {
        let provider = EmbeddingProvider::new();
        let word = provider.embed_word("sea");
        let code = provider.embed_word("2279569217");
        assert_eq!(EmbeddingProvider::pair_similarity(&word, &code), 0.0);
    }

    #[test]
    fn embed_phrase_drops_stop_words() {
        let provider = EmbeddingProvider::new();
        let vs = provider.embed_phrase("the city on the shore");
        assert_eq!(vs.len(), 2);
    }

    #[test]
    fn sentence_embedder_similarity_behaves() {
        let s = SentenceEmbedder::new();
        let sim_related = s.similarity("city on the shore", "nearest city");
        let sim_unrelated = s.similarity("city on the shore", "academic paper citation");
        assert!(sim_related > sim_unrelated);
        assert!((s.similarity("wife", "wife") - 1.0).abs() < 1e-5);
        assert_eq!(s.embed("").len(), EMBEDDING_DIM);
    }

    #[test]
    fn stemming_examples() {
        assert_eq!(stem("flows"), "flow");
        assert_eq!(stem("publications"), "public");
        assert_eq!(stem("cited"), "cit");
        assert_eq!(stem("sea"), "sea");
    }

    #[test]
    fn cosine_of_zero_vector_is_zero() {
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 0.0]), 0.0);
    }
}
