//! Answer data-type and semantic-type prediction (§4.3).
//!
//! KGQAn predicts the expected *data type* of the answer — date, numerical,
//! boolean, or string — with a small neural classifier trained on the QALD-9
//! training questions, and, when the data type is string, a *semantic type*
//! taken to be the first noun of the question.  Both predictions are used
//! only by the post-filtering step.
//!
//! The substitute classifier is an averaged perceptron over bag-of-words and
//! question-shape features, trained on the annotated corpus of
//! [`crate::corpus`].  The semantic type uses the first-noun heuristic backed
//! by the lexicon tagger of [`crate::lexicon`].

use std::fmt;

use crate::lexicon::first_noun;
use crate::perceptron::AveragedPerceptron;
use crate::tokenizer::tokenize_question;

/// The expected data type of an answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AnswerDataType {
    /// A calendar date (or year).
    Date,
    /// A number (count, measurement, …).
    Numeric,
    /// Yes / no.
    Boolean,
    /// Anything else: a resource or plain string.
    String,
}

impl AnswerDataType {
    /// All data types.
    pub const ALL: [AnswerDataType; 4] = [
        AnswerDataType::Date,
        AnswerDataType::Numeric,
        AnswerDataType::Boolean,
        AnswerDataType::String,
    ];

    /// Class label used by the classifier.
    pub fn label(&self) -> &'static str {
        match self {
            AnswerDataType::Date => "date",
            AnswerDataType::Numeric => "numeric",
            AnswerDataType::Boolean => "boolean",
            AnswerDataType::String => "string",
        }
    }

    /// Parse a label back into a data type.
    pub fn from_label(label: &str) -> Option<AnswerDataType> {
        Self::ALL.iter().copied().find(|t| t.label() == label)
    }
}

impl fmt::Display for AnswerDataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The full answer-type prediction: data type plus (for strings) the
/// predicted semantic type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnswerTypePrediction {
    /// Predicted data type.
    pub data_type: AnswerDataType,
    /// Predicted semantic type ("sea", "person", …) when the data type is
    /// string and a first noun exists.
    pub semantic_type: Option<String>,
}

/// The trainable answer-type classifier.
#[derive(Debug, Clone)]
pub struct AnswerTypeClassifier {
    model: AveragedPerceptron,
    trained: bool,
}

impl Default for AnswerTypeClassifier {
    fn default() -> Self {
        Self::new()
    }
}

impl AnswerTypeClassifier {
    /// Create an untrained classifier.
    pub fn new() -> Self {
        AnswerTypeClassifier {
            model: AveragedPerceptron::new(
                AnswerDataType::ALL
                    .iter()
                    .map(|t| t.label().to_string())
                    .collect(),
            ),
            trained: false,
        }
    }

    /// True once trained.
    pub fn is_trained(&self) -> bool {
        self.trained
    }

    /// Train on `(question, data type)` pairs for `epochs` passes.
    pub fn train(&mut self, examples: &[(String, AnswerDataType)], epochs: usize) {
        for _ in 0..epochs {
            for (question, truth) in examples {
                let features = Self::features(question);
                let guess = self.model.predict(&features);
                self.model.update(truth.label(), &guess, &features);
            }
        }
        self.model.average();
        self.trained = true;
    }

    /// Predict the data type and semantic type of a question's answer.
    pub fn predict(&self, question: &str) -> AnswerTypePrediction {
        let features = Self::features(question);
        let label = self.model.predict(&features);
        let data_type = AnswerDataType::from_label(&label).unwrap_or(AnswerDataType::String);
        let semantic_type = if data_type == AnswerDataType::String {
            first_noun(question)
        } else {
            None
        };
        AnswerTypePrediction {
            data_type,
            semantic_type,
        }
    }

    /// Feature template: the first two tokens (question word and auxiliary),
    /// selected cue bigrams ("how many", "in which year"), and a small bag of
    /// lowercase words.
    fn features(question: &str) -> Vec<String> {
        let tokens = tokenize_question(question);
        let lower: Vec<&str> = tokens.iter().map(|t| t.lower.as_str()).collect();
        let mut f = vec!["bias".to_string()];
        if let Some(first) = lower.first() {
            f.push(format!("first={first}"));
        }
        if lower.len() >= 2 {
            f.push(format!("first2={} {}", lower[0], lower[1]));
        }
        if let Some(last) = lower.last() {
            f.push(format!("last={last}"));
        }
        let text = lower.join(" ");
        for cue in [
            "how many",
            "how much",
            "how tall",
            "how long",
            "how old",
            "number of",
            "count",
            "when",
            "what year",
            "which year",
            "what date",
            "birthday",
            "founded",
            "born",
            "die",
            "start",
            "population",
            "height",
            "area",
        ] {
            if text.contains(cue) {
                f.push(format!("cue={cue}"));
            }
        }
        for w in lower.iter().take(12) {
            f.push(format!("w={w}"));
        }
        f
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::training_corpus;

    fn trained() -> AnswerTypeClassifier {
        let corpus = training_corpus();
        let examples: Vec<(String, AnswerDataType)> = corpus
            .iter()
            .map(|q| (q.question.clone(), q.answer_type))
            .collect();
        let mut clf = AnswerTypeClassifier::new();
        clf.train(&examples, 8);
        clf
    }

    #[test]
    fn label_roundtrip() {
        for t in AnswerDataType::ALL {
            assert_eq!(AnswerDataType::from_label(t.label()), Some(t));
        }
        assert_eq!(AnswerDataType::from_label("other"), None);
        assert_eq!(AnswerDataType::Numeric.to_string(), "numeric");
    }

    #[test]
    fn untrained_classifier_reports_untrained() {
        assert!(!AnswerTypeClassifier::new().is_trained());
    }

    #[test]
    fn predicts_boolean_for_yes_no_questions() {
        let clf = trained();
        let p = clf.predict("Did Albert Einstein work at Princeton University?");
        assert_eq!(p.data_type, AnswerDataType::Boolean);
        assert_eq!(p.semantic_type, None);
    }

    #[test]
    fn predicts_numeric_for_how_many_questions() {
        let clf = trained();
        let p = clf.predict("How many papers did Jim Gray write?");
        assert_eq!(p.data_type, AnswerDataType::Numeric);
    }

    #[test]
    fn predicts_date_for_when_questions() {
        let clf = trained();
        let p = clf.predict("When was Albert Einstein born?");
        assert_eq!(p.data_type, AnswerDataType::Date);
    }

    #[test]
    fn predicts_string_with_semantic_type_for_entity_questions() {
        let clf = trained();
        let p = clf.predict(
            "Name the sea into which Danish Straits flows and has Kaliningrad as one of the city on the shore",
        );
        assert_eq!(p.data_type, AnswerDataType::String);
        assert_eq!(p.semantic_type.as_deref(), Some("sea"));
    }

    #[test]
    fn semantic_type_is_first_noun_only_for_strings() {
        let clf = trained();
        let p = clf.predict("Who is the wife of Barack Obama?");
        assert_eq!(p.data_type, AnswerDataType::String);
        assert_eq!(p.semantic_type.as_deref(), Some("wife"));
    }
}
