//! The triple-pattern generator: KGQAn's question-understanding model.
//!
//! The paper formalises question understanding as text generation with a
//! fine-tuned BART or GPT-3 Seq2Seq model (Section 4).  Neither model can be
//! shipped or trained in a pure-Rust, offline reproduction, so this module
//! provides a **trainable substitute with the same contract**:
//!
//! > input: a natural-language question —
//! > output: a sequence of phrase triple patterns whose components are either
//! > phrases from the question or unknowns.
//!
//! The substitute has two stages:
//!
//! 1. a learned **BIO sequence tagger** (averaged perceptron,
//!    [`crate::perceptron`]) labels each question token as part of an entity
//!    phrase, a relation phrase, or other; it is trained on the annotated
//!    corpus of [`crate::corpus`] — never on any target KG;
//! 2. a deterministic **assembler** connects the tagged spans into triple
//!    patterns with a main unknown (and an intermediate unknown for path
//!    questions), reproducing the annotation conventions of §4.1.2.
//!
//! Two feature-template variants are provided so the Table 4 ablation
//! (BART vs GPT-3 question understanding) has a meaningful counterpart:
//! [`Seq2SeqVariant::BartLike`] uses lexical + part-of-speech + context
//! features, [`Seq2SeqVariant::Gpt3Like`] uses lexical features only.

use std::fmt;

use crate::corpus::AnnotatedQuestion;
use crate::lexicon::pos_tag;
use crate::perceptron::AveragedPerceptron;
use crate::tokenizer::{is_stop_word, tokenize_question, Token};

/// BIO tags assigned to question tokens.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BioTag {
    /// Outside any phrase of interest.
    O,
    /// Beginning of an entity phrase.
    EntB,
    /// Continuation of an entity phrase.
    EntI,
    /// Beginning of a relation phrase.
    RelB,
    /// Continuation of a relation phrase.
    RelI,
}

impl BioTag {
    /// All tags, in a fixed order.
    pub const ALL: [BioTag; 5] = [
        BioTag::O,
        BioTag::EntB,
        BioTag::EntI,
        BioTag::RelB,
        BioTag::RelI,
    ];

    /// Canonical string form used as perceptron class labels.
    pub fn label(&self) -> &'static str {
        match self {
            BioTag::O => "O",
            BioTag::EntB => "B-ENT",
            BioTag::EntI => "I-ENT",
            BioTag::RelB => "B-REL",
            BioTag::RelI => "I-REL",
        }
    }

    /// Parse a label back to a tag.
    pub fn from_label(label: &str) -> Option<BioTag> {
        BioTag::ALL.iter().copied().find(|t| t.label() == label)
    }
}

impl fmt::Display for BioTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One node of a phrase triple pattern: a phrase copied from the question or
/// an unknown (variable).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum PhraseNode {
    /// An unknown, identified by a small integer (`?unknown1` is the main
    /// unknown / intention, higher ids are intermediate variables).
    Unknown(u32),
    /// An entity phrase from the question, e.g. `"Danish Straits"`.
    Phrase(String),
}

impl PhraseNode {
    /// True if this node is an unknown.
    pub fn is_unknown(&self) -> bool {
        matches!(self, PhraseNode::Unknown(_))
    }

    /// The phrase text, if this node is a phrase.
    pub fn phrase(&self) -> Option<&str> {
        match self {
            PhraseNode::Phrase(p) => Some(p),
            PhraseNode::Unknown(_) => None,
        }
    }
}

impl fmt::Display for PhraseNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PhraseNode::Unknown(id) => write!(f, "?unknown{id}"),
            PhraseNode::Phrase(p) => write!(f, "{p}"),
        }
    }
}

/// A phrase triple pattern ⟨entityᵃ, relation, entityᵇ⟩ (Definition 4.1).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PhraseTriplePattern {
    /// First entity (phrase or unknown).
    pub subject: PhraseNode,
    /// Relation phrase from the question.
    pub relation: String,
    /// Second entity (phrase or unknown).
    pub object: PhraseNode,
}

impl PhraseTriplePattern {
    /// Construct a triple pattern.
    pub fn new(subject: PhraseNode, relation: impl Into<String>, object: PhraseNode) -> Self {
        PhraseTriplePattern {
            subject,
            relation: relation.into(),
            object,
        }
    }

    /// Convenience constructor: main unknown related to a named entity.
    pub fn unknown_to_entity(relation: impl Into<String>, entity: impl Into<String>) -> Self {
        PhraseTriplePattern::new(
            PhraseNode::Unknown(1),
            relation,
            PhraseNode::Phrase(entity.into()),
        )
    }
}

impl fmt::Display for PhraseTriplePattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨{}, {}, {}⟩", self.subject, self.relation, self.object)
    }
}

/// Backwards-compatible alias used by early revisions of the public API.
pub type PhraseTriple = PhraseTriplePattern;

/// Which pre-trained-language-model variant the substitute emulates
/// (the Table 4 ablation axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Seq2SeqVariant {
    /// Encoder-decoder-like: lexical + POS + bidirectional context features.
    #[default]
    BartLike,
    /// Decoder-only-like: lexical + left-context features only.
    Gpt3Like,
}

impl Seq2SeqVariant {
    /// Human-readable name used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            Seq2SeqVariant::BartLike => "BART",
            Seq2SeqVariant::Gpt3Like => "GPT-3",
        }
    }
}

/// A tagged span of consecutive question tokens.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Span {
    kind: SpanKind,
    text: String,
    start: usize,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SpanKind {
    Entity,
    Relation,
}

/// The trainable triple-pattern generator.
#[derive(Debug, Clone)]
pub struct TriplePatternGenerator {
    tagger: AveragedPerceptron,
    variant: Seq2SeqVariant,
    trained: bool,
}

impl Default for TriplePatternGenerator {
    fn default() -> Self {
        Self::new(Seq2SeqVariant::BartLike)
    }
}

impl TriplePatternGenerator {
    /// Create an untrained generator for the given variant.
    pub fn new(variant: Seq2SeqVariant) -> Self {
        TriplePatternGenerator {
            tagger: AveragedPerceptron::new(
                BioTag::ALL.iter().map(|t| t.label().to_string()).collect(),
            ),
            variant,
            trained: false,
        }
    }

    /// The variant this generator emulates.
    pub fn variant(&self) -> Seq2SeqVariant {
        self.variant
    }

    /// True once [`TriplePatternGenerator::train`] has been called.
    pub fn is_trained(&self) -> bool {
        self.trained
    }

    /// Train the tagger on an annotated corpus for `epochs` passes.
    ///
    /// Mirrors Figure 5: the model is trained once, before deployment, on
    /// KG-independent annotated questions.
    pub fn train(&mut self, corpus: &[AnnotatedQuestion], epochs: usize) {
        for _ in 0..epochs {
            for example in corpus {
                let tokens = tokenize_question(&example.question);
                if tokens.len() != example.tags.len() {
                    continue; // malformed example; skip defensively
                }
                let mut prev = BioTag::O;
                let mut prev2 = BioTag::O;
                for (i, token) in tokens.iter().enumerate() {
                    let features = self.features(&tokens, i, prev, prev2);
                    let guess_label = self.tagger.predict(&features);
                    let truth = example.tags[i];
                    self.tagger.update(truth.label(), &guess_label, &features);
                    prev2 = prev;
                    // Teacher forcing: condition on the gold previous tag.
                    prev = truth;
                    let _ = token;
                }
            }
        }
        self.tagger.average();
        self.trained = true;
    }

    /// Tag a question's tokens.
    pub fn tag(&self, question: &str) -> Vec<(Token, BioTag)> {
        let tokens = tokenize_question(question);
        let mut tags = Vec::with_capacity(tokens.len());
        let mut prev = BioTag::O;
        let mut prev2 = BioTag::O;
        for i in 0..tokens.len() {
            let features = self.features(&tokens, i, prev, prev2);
            let label = self.tagger.predict(&features);
            let tag = BioTag::from_label(&label).unwrap_or(BioTag::O);
            tags.push(tag);
            prev2 = prev;
            prev = tag;
        }
        tokens.into_iter().zip(tags).collect()
    }

    /// Generate the phrase triple patterns for a question (Definition 4.1).
    pub fn generate(&self, question: &str) -> Vec<PhraseTriplePattern> {
        let tagged = self.tag(question);
        let spans = collect_spans(&tagged);
        assemble_triples(question, &tagged, &spans)
    }

    /// Feature template for token `i`.  The BART-like variant sees POS tags
    /// and right context; the GPT-3-like (decoder-only) variant sees only
    /// lexical identity and left context.
    fn features(&self, tokens: &[Token], i: usize, prev: BioTag, prev2: BioTag) -> Vec<String> {
        let token = &tokens[i];
        let mut f = Vec::with_capacity(16);
        f.push("bias".to_string());
        f.push(format!("w={}", token.lower));
        f.push(format!("stem={}", crate::embedding::stem(&token.lower)));
        f.push(format!("cap={}", token.capitalized));
        f.push(format!("num={}", token.numeric));
        f.push(format!("first={}", i == 0));
        f.push(format!("prev_tag={}", prev.label()));
        f.push(format!("prev2_tag={}", prev2.label()));
        if i > 0 {
            f.push(format!("w-1={}", tokens[i - 1].lower));
            f.push(format!("cap-1={}", tokens[i - 1].capitalized));
        } else {
            f.push("w-1=<s>".to_string());
        }
        f.push(format!("stop={}", is_stop_word(&token.lower)));

        if self.variant == Seq2SeqVariant::BartLike {
            let tag = pos_tag(&token.lower, token.capitalized, i == 0);
            f.push(format!("pos={tag:?}"));
            if i + 1 < tokens.len() {
                f.push(format!("w+1={}", tokens[i + 1].lower));
                f.push(format!("cap+1={}", tokens[i + 1].capitalized));
                let next_tag = pos_tag(&tokens[i + 1].lower, tokens[i + 1].capitalized, false);
                f.push(format!("pos+1={next_tag:?}"));
            } else {
                f.push("w+1=</s>".to_string());
            }
            if i > 0 {
                let prev_tag = pos_tag(&tokens[i - 1].lower, tokens[i - 1].capitalized, i == 1);
                f.push(format!("pos-1={prev_tag:?}"));
            }
            if token.lower.len() >= 3 {
                f.push(format!("suf3={}", &token.lower[token.lower.len() - 3..]));
            }
        }
        f
    }
}

/// Group consecutive tagged tokens into entity / relation spans.
///
/// Relation spans separated only by stop words are merged back into one
/// phrase ("city" + "on the" + "shore" → "city on the shore"), recovering
/// noun-phrase relations the tagger fragments around function words.
fn collect_spans(tagged: &[(Token, BioTag)]) -> Vec<Span> {
    let spans = collect_raw_spans(tagged);
    merge_relation_spans(tagged, spans)
}

fn collect_raw_spans(tagged: &[(Token, BioTag)]) -> Vec<Span> {
    let mut spans: Vec<Span> = Vec::new();
    for (i, (token, tag)) in tagged.iter().enumerate() {
        match tag {
            BioTag::EntB | BioTag::RelB => {
                let kind = if matches!(tag, BioTag::EntB) {
                    SpanKind::Entity
                } else {
                    SpanKind::Relation
                };
                spans.push(Span {
                    kind,
                    text: token.surface.clone(),
                    start: i,
                });
            }
            BioTag::EntI | BioTag::RelI => {
                let kind = if matches!(tag, BioTag::EntI) {
                    SpanKind::Entity
                } else {
                    SpanKind::Relation
                };
                match spans.last_mut() {
                    Some(last)
                        if last.kind == kind && last.start + count_tokens(&last.text) == i =>
                    {
                        last.text.push(' ');
                        last.text.push_str(&token.surface);
                    }
                    _ => {
                        // Orphan continuation: treat as a new span.
                        spans.push(Span {
                            kind,
                            text: token.surface.clone(),
                            start: i,
                        });
                    }
                }
            }
            BioTag::O => {}
        }
    }
    spans
}

fn count_tokens(text: &str) -> usize {
    text.split_whitespace().count()
}

/// Merge consecutive relation spans whose gap consists only of stop words
/// (and is at most three tokens wide), keeping the intermediate words.
fn merge_relation_spans(tagged: &[(Token, BioTag)], spans: Vec<Span>) -> Vec<Span> {
    let mut merged: Vec<Span> = Vec::new();
    for span in spans {
        if span.kind == SpanKind::Relation {
            if let Some(last) = merged.last_mut() {
                if last.kind == SpanKind::Relation {
                    let last_end = last.start + count_tokens(&last.text);
                    let gap = span.start.saturating_sub(last_end);
                    let gap_is_stop_words = gap <= 3
                        && tagged[last_end..span.start]
                            .iter()
                            .all(|(t, _)| is_stop_word(&t.lower));
                    if gap_is_stop_words {
                        for (t, _) in &tagged[last_end..span.start] {
                            last.text.push(' ');
                            last.text.push_str(&t.surface);
                        }
                        last.text.push(' ');
                        last.text.push_str(&span.text);
                        continue;
                    }
                }
            }
        }
        merged.push(span);
    }
    merged
}

/// True if the question is a Boolean (yes/no) question: it starts with an
/// auxiliary verb rather than a wh-word or imperative.
fn is_boolean_question(question: &str) -> bool {
    let first = tokenize_question(question)
        .into_iter()
        .next()
        .map(|t| t.lower)
        .unwrap_or_default();
    matches!(
        first.as_str(),
        "is" | "are" | "was" | "were" | "did" | "does" | "do" | "has" | "have" | "can" | "could"
    )
}

/// Assemble triple patterns out of the tagged spans, following the annotation
/// conventions of §4.1.2 (one main unknown; intermediate unknowns for path
/// questions; Boolean questions relate two mentioned entities).
fn assemble_triples(
    question: &str,
    tagged: &[(Token, BioTag)],
    spans: &[Span],
) -> Vec<PhraseTriplePattern> {
    let entities: Vec<&Span> = spans
        .iter()
        .filter(|s| s.kind == SpanKind::Entity)
        .collect();
    let relations: Vec<&Span> = spans
        .iter()
        .filter(|s| s.kind == SpanKind::Relation)
        .collect();

    let mut triples = Vec::new();

    // Boolean question with two entities and at most one relation:
    // ⟨E1, rel, E2⟩ (e.g. "Did Tolkien write The Hobbit?").
    if is_boolean_question(question) && entities.len() >= 2 {
        let relation = relations
            .first()
            .map(|r| r.text.clone())
            .unwrap_or_else(|| fallback_relation(tagged));
        triples.push(PhraseTriplePattern::new(
            PhraseNode::Phrase(entities[0].text.clone()),
            relation,
            PhraseNode::Phrase(entities[1].text.clone()),
        ));
        return triples;
    }

    // Path question: two relations but only one entity, with the second
    // relation *after* the first and the entity after both
    // ("capital of the country whose president is X" →
    //  ⟨?u1, capital, ?u2⟩, ⟨?u2, president, X⟩).
    if relations.len() >= 2 && entities.len() == 1 && relations[1].start < entities[0].start {
        triples.push(PhraseTriplePattern::new(
            PhraseNode::Unknown(1),
            relations[0].text.clone(),
            PhraseNode::Unknown(2),
        ));
        triples.push(PhraseTriplePattern::new(
            PhraseNode::Unknown(2),
            relations[1].text.clone(),
            PhraseNode::Phrase(entities[0].text.clone()),
        ));
        return triples;
    }

    // General star shape: pair every relation with its nearest entity in
    // either direction (entities already claimed by another relation are
    // penalised, so a two-relation question distributes over two entities),
    // all sharing the main unknown.
    if !relations.is_empty() && !entities.is_empty() {
        let mut used = vec![false; entities.len()];
        for rel in &relations {
            let mut best: Option<(usize, usize)> = None; // (distance, entity idx)
            for (idx, ent) in entities.iter().enumerate() {
                let distance = ent.start.abs_diff(rel.start);
                let penalty = if used[idx] { 6 } else { 0 };
                let score = distance + penalty;
                if best.is_none_or(|(d, _)| score < d) {
                    best = Some((score, idx));
                }
            }
            if let Some((_, idx)) = best {
                used[idx] = true;
                triples.push(PhraseTriplePattern::new(
                    PhraseNode::Unknown(1),
                    rel.text.clone(),
                    PhraseNode::Phrase(entities[idx].text.clone()),
                ));
            }
        }
        // Entities not linked to any relation (more entities than relations)
        // still constrain the unknown; attach them with the fallback relation.
        for (idx, ent) in entities.iter().enumerate() {
            if !used[idx] && !triples.is_empty() {
                triples.push(PhraseTriplePattern::new(
                    PhraseNode::Unknown(1),
                    fallback_relation(tagged),
                    PhraseNode::Phrase(ent.text.clone()),
                ));
            }
        }
        return triples;
    }

    // Only entities, no relation (e.g. "What is Kaliningrad?"): relate the
    // unknown to the entity through a generic relation derived from leftover
    // content words.
    if !entities.is_empty() {
        for ent in &entities {
            triples.push(PhraseTriplePattern::new(
                PhraseNode::Unknown(1),
                fallback_relation(tagged),
                PhraseNode::Phrase(ent.text.clone()),
            ));
        }
        return triples;
    }

    // Only relations, no entity (e.g. "How many seas are there?"):
    // ⟨?u1, rel, ?u2⟩.
    for rel in &relations {
        triples.push(PhraseTriplePattern::new(
            PhraseNode::Unknown(1),
            rel.text.clone(),
            PhraseNode::Unknown(2),
        ));
    }
    triples
}

/// When the tagger found no usable relation phrase, fall back to the
/// non-stop-word, non-entity content of the question (mirrors how the paper's
/// model copies arbitrary noun phrases as relations).
fn fallback_relation(tagged: &[(Token, BioTag)]) -> String {
    let words: Vec<String> = tagged
        .iter()
        .filter(|(t, tag)| {
            *tag == BioTag::O
                && !is_stop_word(&t.lower)
                && !t.capitalized
                && !crate::tokenizer::QUESTION_WORDS.contains(&t.lower.as_str())
        })
        .map(|(t, _)| t.lower.clone())
        .collect();
    if words.is_empty() {
        "related to".to_string()
    } else {
        words.join(" ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::training_corpus;

    fn trained() -> TriplePatternGenerator {
        let corpus = training_corpus();
        let mut generator = TriplePatternGenerator::new(Seq2SeqVariant::BartLike);
        generator.train(&corpus, 5);
        generator
    }

    #[test]
    fn bio_tag_label_roundtrip() {
        for tag in BioTag::ALL {
            assert_eq!(BioTag::from_label(tag.label()), Some(tag));
        }
        assert_eq!(BioTag::from_label("nonsense"), None);
    }

    #[test]
    fn phrase_node_and_pattern_display() {
        let tp = PhraseTriplePattern::unknown_to_entity("flow", "Danish Straits");
        assert_eq!(tp.to_string(), "⟨?unknown1, flow, Danish Straits⟩");
        assert!(tp.subject.is_unknown());
        assert_eq!(tp.object.phrase(), Some("Danish Straits"));
    }

    #[test]
    fn untrained_generator_reports_untrained() {
        let g = TriplePatternGenerator::default();
        assert!(!g.is_trained());
        assert_eq!(g.variant(), Seq2SeqVariant::BartLike);
    }

    #[test]
    fn training_learns_to_tag_entities_and_relations() {
        let g = trained();
        assert!(g.is_trained());
        let tagged = g.tag("Who is the wife of Barack Obama?");
        let tags: Vec<BioTag> = tagged.iter().map(|(_, t)| *t).collect();
        // "wife" must be part of a relation span, "Barack Obama" an entity span.
        let wife_idx = tagged.iter().position(|(t, _)| t.lower == "wife").unwrap();
        assert!(matches!(tags[wife_idx], BioTag::RelB | BioTag::RelI));
        let barack_idx = tagged
            .iter()
            .position(|(t, _)| t.lower == "barack")
            .unwrap();
        assert!(matches!(tags[barack_idx], BioTag::EntB | BioTag::EntI));
    }

    #[test]
    fn generates_single_fact_triple() {
        let g = trained();
        let triples = g.generate("Who is the spouse of Angela Merkel?");
        assert!(!triples.is_empty());
        let t = &triples[0];
        assert!(t.subject.is_unknown() || t.object.is_unknown());
        let phrase = t
            .object
            .phrase()
            .or_else(|| t.subject.phrase())
            .unwrap_or("");
        assert!(phrase.contains("Angela") || phrase.contains("Merkel"));
    }

    #[test]
    fn generates_two_triples_for_running_example_style_question() {
        let g = trained();
        let triples = g.generate(
            "Name the sea into which Danish Straits flows and has Kaliningrad as one of the city on the shore",
        );
        assert!(
            triples.len() >= 2,
            "expected at least two triple patterns, got {triples:?}"
        );
        // Both triples share the main unknown.
        assert!(triples.iter().all(|t| t.subject == PhraseNode::Unknown(1)));
        let entities: Vec<&str> = triples.iter().filter_map(|t| t.object.phrase()).collect();
        assert!(entities.iter().any(|e| e.contains("Danish")));
        assert!(entities.iter().any(|e| e.contains("Kaliningrad")));
    }

    #[test]
    fn boolean_question_relates_two_entities() {
        let g = trained();
        let triples = g.generate("Did Albert Einstein work at Princeton University?");
        assert_eq!(triples.len(), 1);
        let t = &triples[0];
        assert!(!t.subject.is_unknown());
        assert!(!t.object.is_unknown());
    }

    #[test]
    fn gpt3_variant_also_trains_and_generates() {
        let corpus = training_corpus();
        let mut g = TriplePatternGenerator::new(Seq2SeqVariant::Gpt3Like);
        g.train(&corpus, 5);
        assert_eq!(g.variant().label(), "GPT-3");
        let triples = g.generate("Who is the author of Dune?");
        assert!(!triples.is_empty());
    }

    #[test]
    fn empty_question_yields_no_triples() {
        let g = trained();
        assert!(g.generate("").is_empty());
    }

    #[test]
    fn fallback_relation_uses_content_words() {
        let g = trained();
        // A question with an entity but (likely) no tagged relation phrase.
        let triples = g.generate("What is Kaliningrad?");
        assert!(!triples.is_empty());
    }
}
