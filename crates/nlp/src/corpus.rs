//! The annotated training corpus for question understanding.
//!
//! The paper fine-tunes its Seq2Seq model on **1,752 manually annotated
//! questions** drawn from the QALD-9 and LC-QuAD 1.0 training splits
//! (§4.1.2): each question is annotated with its phrase triple patterns
//! (entities, relations, unknowns).  Those annotation files are not
//! redistributable, so this module *generates* an equivalent corpus from
//! question templates over general-fact vocabulary (people, places, works,
//! organisations) with the same properties:
//!
//! * every example carries token-level entity/relation tags, the gold phrase
//!   triple patterns and the expected answer data type,
//! * the vocabulary is deliberately **general-domain only** — no scholarly
//!   (DBLP/MAG) questions appear, mirroring the paper's observation that the
//!   model is trained on DBpedia-style facts yet generalises to unseen
//!   domains,
//! * the corpus covers the same question categories: single fact, fact with
//!   type, multi-fact, Boolean, count, and date questions, with one main
//!   unknown and optional intermediate unknowns.

use crate::answer_type::AnswerDataType;
use crate::seq2seq::{BioTag, PhraseNode, PhraseTriplePattern};
use crate::tokenizer::tokenize_question;

/// One annotated training question.
#[derive(Debug, Clone, PartialEq)]
pub struct AnnotatedQuestion {
    /// The question text.
    pub question: String,
    /// Token-level BIO tags, aligned with `tokenize_question(&question)`.
    pub tags: Vec<BioTag>,
    /// The gold phrase triple patterns.
    pub triples: Vec<PhraseTriplePattern>,
    /// The expected answer data type.
    pub answer_type: AnswerDataType,
    /// The expected semantic type (first noun) for string answers.
    pub semantic_type: Option<String>,
}

/// A question segment used by the template builder.
#[derive(Debug, Clone)]
enum Seg {
    /// Plain words tagged `O`.
    O(String),
    /// An entity phrase (tagged `B-ENT` / `I-ENT`).
    Ent(String),
    /// A relation phrase (tagged `B-REL` / `I-REL`).
    Rel(String),
}

fn o(text: &str) -> Seg {
    Seg::O(text.to_string())
}
fn ent(text: &str) -> Seg {
    Seg::Ent(text.to_string())
}
fn rel(text: &str) -> Seg {
    Seg::Rel(text.to_string())
}

/// Assemble a question string and aligned tags from segments.
fn build(
    segments: &[Seg],
    triples: Vec<PhraseTriplePattern>,
    answer_type: AnswerDataType,
    semantic_type: Option<&str>,
) -> AnnotatedQuestion {
    let mut question = String::new();
    let mut tags = Vec::new();
    for seg in segments {
        let (text, kind) = match seg {
            Seg::O(t) => (t, None),
            Seg::Ent(t) => (t, Some((BioTag::EntB, BioTag::EntI))),
            Seg::Rel(t) => (t, Some((BioTag::RelB, BioTag::RelI))),
        };
        if text.is_empty() {
            continue;
        }
        if !question.is_empty() {
            question.push(' ');
        }
        question.push_str(text);
        let token_count = tokenize_question(text).len();
        match kind {
            None => tags.extend(std::iter::repeat_n(BioTag::O, token_count)),
            Some((begin, inside)) => {
                for i in 0..token_count {
                    tags.push(if i == 0 { begin } else { inside });
                }
            }
        }
    }
    debug_assert_eq!(tokenize_question(&question).len(), tags.len());
    AnnotatedQuestion {
        question,
        tags,
        triples,
        answer_type,
        semantic_type: semantic_type.map(str::to_string),
    }
}

/// People used as entity fillers.
const PEOPLE: &[&str] = &[
    "Barack Obama",
    "Angela Merkel",
    "Albert Einstein",
    "Marie Curie",
    "Alan Turing",
    "Isaac Newton",
    "Ada Lovelace",
    "Grace Hopper",
    "Nelson Mandela",
    "Frida Kahlo",
    "Leonardo da Vinci",
    "Charles Darwin",
    "Jane Austen",
    "William Shakespeare",
    "Pablo Picasso",
    "Nikola Tesla",
    "Abraham Lincoln",
    "Winston Churchill",
    "Indira Gandhi",
    "Mahatma Gandhi",
];

/// Places used as entity fillers.
const PLACES: &[&str] = &[
    "Germany",
    "Canada",
    "Kaliningrad",
    "Baltic Sea",
    "Danish Straits",
    "Berlin",
    "Paris",
    "Mount Everest",
    "Amazon River",
    "Lake Victoria",
    "Egypt",
    "Japan",
    "Brazil",
    "Nile",
    "Sahara Desert",
    "Australia",
    "Buenos Aires",
    "Reykjavik",
];

/// Creative works used as entity fillers.
const WORKS: &[&str] = &[
    "The Hobbit",
    "Dune",
    "Hamlet",
    "Inception",
    "The Matrix",
    "Mona Lisa",
    "War and Peace",
    "Casablanca",
    "Bohemian Rhapsody",
    "Guernica",
];

/// Organisations used as entity fillers.
const ORGS: &[&str] = &[
    "Princeton University",
    "Stanford University",
    "Microsoft",
    "IBM",
    "United Nations",
    "European Union",
    "NASA",
    "Bauhaus",
];

/// Relation nouns whose answers are resources / strings.
const STRING_RELATION_NOUNS: &[&str] = &[
    "wife",
    "husband",
    "spouse",
    "capital",
    "mayor",
    "author",
    "director",
    "currency",
    "official language",
    "birth place",
    "nearest city",
    "founder",
    "leader",
    "mother",
    "father",
];

/// Relation nouns whose answers are numeric.
const NUMERIC_RELATION_NOUNS: &[&str] = &["population", "height", "area", "length"];

/// Relation verbs (simple past) used in "Who VERB ENTITY?" questions.
const RELATION_VERBS: &[&str] = &[
    "wrote",
    "directed",
    "founded",
    "discovered",
    "invented",
    "painted",
    "composed",
    "designed",
];

/// Types used in "Which TYPE ..." questions.
const TYPES: &[&str] = &[
    "city",
    "country",
    "river",
    "university",
    "company",
    "scientist",
    "museum",
];

/// Count nouns for "How many ... ?" questions.
const COUNT_NOUNS: &[&str] = &["children", "languages", "awards", "inhabitants", "students"];

/// Build the full training corpus (deterministic, no randomness).
///
/// The size is comparable to the paper's 1,752 annotated questions.
pub fn training_corpus() -> Vec<AnnotatedQuestion> {
    let mut corpus = Vec::new();

    // 1. Single fact, relation noun: "Who is the wife of Barack Obama?"
    for (i, relation) in STRING_RELATION_NOUNS.iter().enumerate() {
        for (j, entity) in PEOPLE.iter().chain(PLACES.iter()).enumerate() {
            if (i + j) % 2 == 0 {
                corpus.push(build(
                    &[o("Who is the"), rel(relation), o("of"), ent(entity)],
                    vec![PhraseTriplePattern::unknown_to_entity(*relation, *entity)],
                    AnswerDataType::String,
                    Some(relation.split(' ').next_back().unwrap_or(relation)),
                ));
            } else {
                corpus.push(build(
                    &[o("What is the"), rel(relation), o("of"), ent(entity)],
                    vec![PhraseTriplePattern::unknown_to_entity(*relation, *entity)],
                    AnswerDataType::String,
                    Some(relation.split(' ').next_back().unwrap_or(relation)),
                ));
            }
        }
    }

    // 2. Single fact, verb relation: "Who wrote The Hobbit?"
    for relation in RELATION_VERBS {
        for entity in WORKS.iter().chain(ORGS.iter()) {
            corpus.push(build(
                &[o("Who"), rel(relation), ent(entity)],
                vec![PhraseTriplePattern::unknown_to_entity(*relation, *entity)],
                AnswerDataType::String,
                None,
            ));
        }
    }

    // 3. Fact with type: "Which city is the capital of Germany?"
    for (i, ty) in TYPES.iter().enumerate() {
        for relation in STRING_RELATION_NOUNS.iter().skip(i % 3).step_by(3) {
            for entity in PLACES.iter().step_by(2) {
                corpus.push(build(
                    &[
                        o("Which"),
                        o(ty),
                        o("is the"),
                        rel(relation),
                        o("of"),
                        ent(entity),
                    ],
                    vec![PhraseTriplePattern::unknown_to_entity(*relation, *entity)],
                    AnswerDataType::String,
                    Some(ty),
                ));
            }
        }
    }

    // 4. Date questions: "When was Albert Einstein born?"
    for entity in PEOPLE {
        corpus.push(build(
            &[o("When was"), ent(entity), rel("born")],
            vec![PhraseTriplePattern::unknown_to_entity("born", *entity)],
            AnswerDataType::Date,
            None,
        ));
        corpus.push(build(
            &[o("When did"), ent(entity), rel("die")],
            vec![PhraseTriplePattern::unknown_to_entity("die", *entity)],
            AnswerDataType::Date,
            None,
        ));
    }
    for entity in ORGS {
        corpus.push(build(
            &[o("When was"), ent(entity), rel("founded")],
            vec![PhraseTriplePattern::unknown_to_entity("founded", *entity)],
            AnswerDataType::Date,
            None,
        ));
    }

    // 5. Numeric questions: "What is the population of Berlin?" and
    //    "How many children does Barack Obama have?"
    for relation in NUMERIC_RELATION_NOUNS {
        for entity in PLACES.iter().step_by(2) {
            corpus.push(build(
                &[o("What is the"), rel(relation), o("of"), ent(entity)],
                vec![PhraseTriplePattern::unknown_to_entity(*relation, *entity)],
                AnswerDataType::Numeric,
                None,
            ));
        }
    }
    for count in COUNT_NOUNS {
        for entity in PEOPLE.iter().step_by(3).chain(PLACES.iter().step_by(4)) {
            corpus.push(build(
                &[o("How many"), rel(count), o("does"), ent(entity), o("have")],
                vec![PhraseTriplePattern::unknown_to_entity(*count, *entity)],
                AnswerDataType::Numeric,
                None,
            ));
        }
    }

    // 6. Boolean questions: "Did Tolkien write The Hobbit?" /
    //    "Is Berlin the capital of Germany?"
    for (i, subject) in PEOPLE.iter().enumerate() {
        let object = WORKS[i % WORKS.len()];
        let verb = RELATION_VERBS[i % RELATION_VERBS.len()];
        corpus.push(build(
            &[o("Did"), ent(subject), rel(verb), ent(object)],
            vec![PhraseTriplePattern::new(
                PhraseNode::Phrase(subject.to_string()),
                verb,
                PhraseNode::Phrase(object.to_string()),
            )],
            AnswerDataType::Boolean,
            None,
        ));
    }
    for (i, place) in PLACES.iter().enumerate() {
        let country = PLACES[(i + 3) % PLACES.len()];
        corpus.push(build(
            &[
                o("Is"),
                ent(place),
                o("the"),
                rel("capital"),
                o("of"),
                ent(country),
            ],
            vec![PhraseTriplePattern::new(
                PhraseNode::Phrase(place.to_string()),
                "capital",
                PhraseNode::Phrase(country.to_string()),
            )],
            AnswerDataType::Boolean,
            None,
        ));
    }

    // 7. Multi-fact (star) questions, in the style of the running example:
    //    "Name the sea into which Danish Straits flows and has Kaliningrad as
    //     one of the city on the shore".
    let multi_fact_slots: &[(&str, &str, &str, &str, &str)] = &[
        (
            "sea",
            "flows",
            "Danish Straits",
            "city on the shore",
            "Kaliningrad",
        ),
        ("river", "flows", "Lake Victoria", "nearest city", "Cairo"),
        (
            "country",
            "borders",
            "Germany",
            "official language",
            "French",
        ),
        (
            "scientist",
            "discovered",
            "Penicillin",
            "birth place",
            "Scotland",
        ),
        (
            "company",
            "founded",
            "Bill Gates",
            "headquarters",
            "Redmond",
        ),
        (
            "film",
            "directed",
            "Christopher Nolan",
            "starring",
            "Leonardo DiCaprio",
        ),
        ("city", "located in", "Bavaria", "mayor", "Dieter Reiter"),
        (
            "university",
            "located in",
            "California",
            "founder",
            "Leland Stanford",
        ),
    ];
    for (ty, rel1, ent1, rel2, ent2) in multi_fact_slots {
        corpus.push(build(
            &[
                o("Name the"),
                o(ty),
                o("into which"),
                ent(ent1),
                rel(rel1),
                o("and has"),
                ent(ent2),
                o("as one of the"),
                rel(rel2),
            ],
            vec![
                PhraseTriplePattern::unknown_to_entity(*rel1, *ent1),
                PhraseTriplePattern::unknown_to_entity(*rel2, *ent2),
            ],
            AnswerDataType::String,
            Some(ty),
        ));
        corpus.push(build(
            &[
                o("Which"),
                o(ty),
                rel(rel1),
                ent(ent1),
                o("and has"),
                ent(ent2),
                o("as"),
                rel(rel2),
            ],
            vec![
                PhraseTriplePattern::unknown_to_entity(*rel1, *ent1),
                PhraseTriplePattern::unknown_to_entity(*rel2, *ent2),
            ],
            AnswerDataType::String,
            Some(ty),
        ));
    }

    // 8. Path questions with an intermediate unknown:
    //    "What is the capital of the country whose president is Emmanuel Macron?"
    let path_slots: &[(&str, &str, &str, &str)] = &[
        ("capital", "country", "president", "Emmanuel Macron"),
        ("population", "city", "mayor", "Anne Hidalgo"),
        ("currency", "country", "capital", "Ottawa"),
        ("official language", "country", "largest city", "Sao Paulo"),
        ("area", "country", "leader", "Angela Merkel"),
    ];
    for (rel1, ty, rel2, entity) in path_slots {
        corpus.push(build(
            &[
                o("What is the"),
                rel(rel1),
                o("of the"),
                o(ty),
                o("whose"),
                rel(rel2),
                o("is"),
                ent(entity),
            ],
            vec![
                PhraseTriplePattern::new(
                    PhraseNode::Unknown(1),
                    rel1.to_string(),
                    PhraseNode::Unknown(2),
                ),
                PhraseTriplePattern::new(
                    PhraseNode::Unknown(2),
                    rel2.to_string(),
                    PhraseNode::Phrase(entity.to_string()),
                ),
            ],
            if *rel1 == "population" || *rel1 == "area" {
                AnswerDataType::Numeric
            } else {
                AnswerDataType::String
            },
            Some(rel1.split(' ').next_back().unwrap_or(rel1)),
        ));
    }

    corpus
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_size_is_comparable_to_the_paper() {
        let corpus = training_corpus();
        assert!(
            corpus.len() >= 800,
            "expected a corpus in the same order of magnitude as the paper's 1752 \
             annotated questions, got {}",
            corpus.len()
        );
    }

    #[test]
    fn every_example_has_aligned_tags() {
        for q in training_corpus() {
            let tokens = tokenize_question(&q.question);
            assert_eq!(
                tokens.len(),
                q.tags.len(),
                "tag misalignment for question: {}",
                q.question
            );
        }
    }

    #[test]
    fn every_example_has_at_least_one_triple() {
        for q in training_corpus() {
            assert!(!q.triples.is_empty(), "no triples for {}", q.question);
        }
    }

    #[test]
    fn every_non_boolean_example_has_a_main_unknown() {
        for q in training_corpus() {
            if q.answer_type == AnswerDataType::Boolean {
                continue;
            }
            assert!(
                q.triples
                    .iter()
                    .any(|t| t.subject == PhraseNode::Unknown(1)
                        || t.object == PhraseNode::Unknown(1)),
                "no main unknown in {}",
                q.question
            );
        }
    }

    #[test]
    fn corpus_covers_all_answer_types() {
        let corpus = training_corpus();
        for ty in AnswerDataType::ALL {
            assert!(
                corpus.iter().any(|q| q.answer_type == ty),
                "no examples with answer type {ty}"
            );
        }
    }

    #[test]
    fn corpus_contains_multi_fact_and_path_questions() {
        let corpus = training_corpus();
        assert!(corpus.iter().any(|q| q.triples.len() >= 2));
        assert!(corpus
            .iter()
            .any(|q| q.triples.iter().any(
                |t| t.object == PhraseNode::Unknown(2) || t.subject == PhraseNode::Unknown(2)
            )));
    }

    #[test]
    fn corpus_is_scholarly_free() {
        // The training corpus must not mention the DBLP/MAG domain, so that
        // those benchmarks remain truly "unseen domains" (§7.2.3).
        for q in training_corpus() {
            let lower = q.question.to_lowercase();
            assert!(
                !lower.contains("paper"),
                "scholarly question leaked: {}",
                q.question
            );
            assert!(
                !lower.contains("conference"),
                "scholarly question leaked: {}",
                q.question
            );
            assert!(
                !lower.contains("citation"),
                "scholarly question leaked: {}",
                q.question
            );
        }
    }

    #[test]
    fn entity_tags_cover_entity_phrases() {
        let corpus = training_corpus();
        let example = corpus
            .iter()
            .find(|q| q.question.contains("Danish Straits"))
            .expect("running-example-style question present");
        let tokens = tokenize_question(&example.question);
        let danish = tokens.iter().position(|t| t.surface == "Danish").unwrap();
        assert_eq!(example.tags[danish], BioTag::EntB);
        assert_eq!(example.tags[danish + 1], BioTag::EntI);
    }
}
