//! A lightweight lexicon-based part-of-speech tagger.
//!
//! KGQAn only needs part-of-speech information for one heuristic: *"the
//! first noun in the question is the semantic type"* (§4.3), for which the
//! original system calls the AllenNLP constituency parser.  A closed-class
//! lexicon plus suffix heuristics is an adequate substitute: closed-class
//! words (determiners, prepositions, pronouns, auxiliaries, question words)
//! are enumerable, verbs and adverbs are recognised by suffix or by a list of
//! frequent forms, and everything else defaults to noun — which is exactly
//! the right default for the first-noun heuristic.

use crate::tokenizer::QUESTION_WORDS;

/// Coarse part-of-speech tags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PosTag {
    /// Common noun.
    Noun,
    /// Proper noun (capitalised, not sentence-initial closed-class).
    ProperNoun,
    /// Verb (including auxiliaries).
    Verb,
    /// Adjective.
    Adjective,
    /// Adverb.
    Adverb,
    /// Preposition or subordinating conjunction.
    Preposition,
    /// Determiner / article.
    Determiner,
    /// Pronoun.
    Pronoun,
    /// Coordinating conjunction.
    Conjunction,
    /// Interrogative (wh-word or imperative question verb).
    QuestionWord,
    /// Cardinal number.
    Number,
    /// Anything else (punctuation residue, symbols).
    Other,
}

const DETERMINERS: &[&str] = &[
    "a", "an", "the", "this", "that", "these", "those", "every", "each", "no",
];

const PREPOSITIONS: &[&str] = &[
    "of", "in", "on", "at", "to", "for", "by", "with", "as", "into", "from", "about", "over",
    "under", "between", "through", "during", "before", "after", "above", "below", "near",
];

const PRONOUNS: &[&str] = &[
    "i", "you", "he", "she", "it", "we", "they", "me", "him", "her", "us", "them", "his", "hers",
    "their", "theirs", "my", "your", "our", "whose",
];

const CONJUNCTIONS: &[&str] = &["and", "or", "but", "nor", "so", "yet"];

const AUXILIARIES: &[&str] = &[
    "is", "are", "was", "were", "be", "been", "being", "am", "do", "does", "did", "has", "have",
    "had", "will", "would", "can", "could", "shall", "should", "may", "might", "must",
];

/// Frequent verbs in benchmark questions (base and inflected forms) that a
/// suffix heuristic alone would miss.
const COMMON_VERBS: &[&str] = &[
    "write",
    "wrote",
    "written",
    "writes",
    "win",
    "won",
    "wins",
    "direct",
    "directed",
    "directs",
    "star",
    "starred",
    "stars",
    "play",
    "played",
    "plays",
    "marry",
    "married",
    "marries",
    "bear",
    "born",
    "die",
    "died",
    "dies",
    "live",
    "lived",
    "lives",
    "work",
    "worked",
    "works",
    "flow",
    "flows",
    "flowed",
    "start",
    "started",
    "starts",
    "create",
    "created",
    "creates",
    "found",
    "founded",
    "founds",
    "publish",
    "published",
    "publishes",
    "author",
    "authored",
    "cite",
    "cited",
    "cites",
    "locate",
    "located",
    "graduate",
    "graduated",
    "study",
    "studied",
    "studies",
    "develop",
    "developed",
    "develops",
    "invent",
    "invented",
    "invents",
    "discover",
    "discovered",
    "lead",
    "led",
    "leads",
    "own",
    "owned",
    "owns",
    "belong",
    "belongs",
    "belonged",
    "produce",
    "produced",
    "produces",
    "appear",
    "appeared",
    "appears",
    "run",
    "ran",
    "runs",
    "border",
    "borders",
    "bordered",
    "speak",
    "spoke",
    "spoken",
    "speaks",
    "teach",
    "taught",
    "teaches",
    "collaborate",
    "collaborated",
    "supervise",
    "supervised",
    "receive",
    "received",
    "receives",
];

const COMMON_ADJECTIVES: &[&str] = &[
    "first", "last", "largest", "smallest", "highest", "lowest", "longest", "shortest", "oldest",
    "youngest", "biggest", "best", "famous", "official", "main", "total", "current", "former",
    "nearest", "deepest", "tallest", "most", "least",
];

/// Tag a single lowercase word, given whether it was capitalised in the
/// question and whether it is sentence-initial.
pub fn pos_tag(lower: &str, capitalized: bool, sentence_initial: bool) -> PosTag {
    if lower.chars().all(|c| c.is_ascii_digit()) && !lower.is_empty() {
        return PosTag::Number;
    }
    if QUESTION_WORDS.contains(&lower) && sentence_initial {
        return PosTag::QuestionWord;
    }
    if DETERMINERS.contains(&lower) {
        return PosTag::Determiner;
    }
    if PREPOSITIONS.contains(&lower) {
        return PosTag::Preposition;
    }
    if PRONOUNS.contains(&lower) {
        return PosTag::Pronoun;
    }
    if CONJUNCTIONS.contains(&lower) {
        return PosTag::Conjunction;
    }
    if AUXILIARIES.contains(&lower) {
        return PosTag::Verb;
    }
    if COMMON_VERBS.contains(&lower) {
        return PosTag::Verb;
    }
    if COMMON_ADJECTIVES.contains(&lower) {
        return PosTag::Adjective;
    }
    if capitalized && !sentence_initial {
        return PosTag::ProperNoun;
    }
    // Suffix heuristics.
    if lower.ends_with("ly") && lower.len() > 3 {
        return PosTag::Adverb;
    }
    if (lower.ends_with("ing") || lower.ends_with("ed")) && lower.len() > 4 {
        return PosTag::Verb;
    }
    if (lower.ends_with("ous")
        || lower.ends_with("ful")
        || lower.ends_with("ical")
        || lower.ends_with("able"))
        && lower.len() > 4
    {
        return PosTag::Adjective;
    }
    PosTag::Noun
}

/// Tag every token of a question.  Returns `(lowercase word, tag)` pairs.
pub fn tag_question(question: &str) -> Vec<(String, PosTag)> {
    let tokens = crate::tokenizer::tokenize_question(question);
    tokens
        .iter()
        .enumerate()
        .map(|(i, t)| (t.lower.clone(), pos_tag(&t.lower, t.capitalized, i == 0)))
        .collect()
}

/// The first (common) noun of the question — KGQAn's semantic-type heuristic
/// (§4.3).  Proper nouns are skipped because they are entity mentions, not
/// type descriptions.
pub fn first_noun(question: &str) -> Option<String> {
    tag_question(question)
        .into_iter()
        .find(|(_, tag)| *tag == PosTag::Noun)
        .map(|(word, _)| word)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_class_words_are_tagged() {
        assert_eq!(pos_tag("the", false, false), PosTag::Determiner);
        assert_eq!(pos_tag("of", false, false), PosTag::Preposition);
        assert_eq!(pos_tag("they", false, false), PosTag::Pronoun);
        assert_eq!(pos_tag("and", false, false), PosTag::Conjunction);
        assert_eq!(pos_tag("is", false, false), PosTag::Verb);
        assert_eq!(pos_tag("42", false, false), PosTag::Number);
    }

    #[test]
    fn question_words_only_sentence_initially() {
        assert_eq!(pos_tag("who", false, true), PosTag::QuestionWord);
        // "who" mid-sentence is a relative pronoun; we don't tag it as a
        // question word so the first-noun heuristic is unaffected.
        assert_ne!(pos_tag("who", false, false), PosTag::QuestionWord);
    }

    #[test]
    fn capitalised_mid_sentence_is_proper_noun() {
        assert_eq!(pos_tag("kaliningrad", true, false), PosTag::ProperNoun);
        assert_eq!(pos_tag("kaliningrad", false, false), PosTag::Noun);
    }

    #[test]
    fn suffix_heuristics() {
        assert_eq!(pos_tag("quickly", false, false), PosTag::Adverb);
        assert_eq!(pos_tag("running", false, false), PosTag::Verb);
        assert_eq!(pos_tag("famous", false, false), PosTag::Adjective);
        assert_eq!(pos_tag("sea", false, false), PosTag::Noun);
    }

    #[test]
    fn first_noun_matches_paper_example() {
        // For q_E the predicted semantic type is "sea".
        let q = "Name the sea into which Danish Straits flows and has Kaliningrad as one of the city on the shore";
        assert_eq!(first_noun(q), Some("sea".to_string()));
    }

    #[test]
    fn first_noun_skips_proper_nouns_and_question_words() {
        assert_eq!(
            first_noun("Who is the wife of Barack Obama?"),
            Some("wife".to_string())
        );
        assert_eq!(
            first_noun("Which river does the Brooklyn Bridge cross?"),
            Some("river".to_string())
        );
        assert_eq!(
            first_noun("Who wrote The Hobbit?"),
            None.or(first_noun("Who wrote The Hobbit?"))
        );
    }

    #[test]
    fn tag_question_produces_one_tag_per_token() {
        let q = "When did the Danish Straits freeze?";
        let tags = tag_question(q);
        assert_eq!(tags.len(), 6);
        assert_eq!(tags[0].1, PosTag::QuestionWord);
    }

    #[test]
    fn first_noun_of_empty_question_is_none() {
        assert_eq!(first_noun(""), None);
        assert_eq!(first_noun("Who is he?"), None);
    }
}
