//! A multi-class averaged perceptron over sparse string features.
//!
//! This is the learning machinery behind both the triple-pattern tagger
//! (the BART/GPT-3 Seq2Seq substitute, [`crate::seq2seq`]) and part of the
//! answer-type classifier.  The averaged perceptron is a classic structured
//! NLP learner: simple, fast, deterministic, and — crucially for this
//! reproduction — trainable from the annotated question corpus rather than
//! hand-curated per benchmark.

use std::collections::HashMap;

/// A multi-class averaged perceptron.
///
/// Weights are keyed by `(feature, class)`; prediction is the argmax class of
/// the summed weights of the active features.  Training uses the standard
/// "average of all intermediate weight vectors" trick to reduce variance,
/// implemented with lazily-accumulated totals.
#[derive(Debug, Clone, Default)]
pub struct AveragedPerceptron {
    classes: Vec<String>,
    weights: HashMap<String, HashMap<String, f64>>,
    totals: HashMap<(String, String), f64>,
    timestamps: HashMap<(String, String), u64>,
    instances: u64,
    averaged: bool,
}

impl AveragedPerceptron {
    /// Create a perceptron over the given set of classes.
    pub fn new(classes: Vec<String>) -> Self {
        AveragedPerceptron {
            classes,
            ..Default::default()
        }
    }

    /// The known classes.
    pub fn classes(&self) -> &[String] {
        &self.classes
    }

    /// Number of distinct features with at least one non-zero weight.
    pub fn num_features(&self) -> usize {
        self.weights.len()
    }

    /// Score every class for a feature set.
    pub fn scores(&self, features: &[String]) -> Vec<(String, f64)> {
        let mut scores: HashMap<&str, f64> =
            self.classes.iter().map(|c| (c.as_str(), 0.0)).collect();
        for feature in features {
            if let Some(per_class) = self.weights.get(feature) {
                for (class, w) in per_class {
                    *scores.entry(class.as_str()).or_insert(0.0) += w;
                }
            }
        }
        let mut out: Vec<(String, f64)> = scores
            .into_iter()
            .map(|(c, s)| (c.to_string(), s))
            .collect();
        // Deterministic tie-breaking: by score descending, then class name.
        out.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        out
    }

    /// Predict the best class for a feature set.
    pub fn predict(&self, features: &[String]) -> String {
        self.scores(features)
            .into_iter()
            .next()
            .map(|(c, _)| c)
            .unwrap_or_default()
    }

    /// One online update: if the prediction differs from the truth, promote
    /// the truth's weights and demote the prediction's.
    pub fn update(&mut self, truth: &str, guess: &str, features: &[String]) {
        self.instances += 1;
        if truth == guess {
            return;
        }
        for feature in features {
            self.adjust(feature, truth, 1.0);
            self.adjust(feature, guess, -1.0);
        }
    }

    fn adjust(&mut self, feature: &str, class: &str, delta: f64) {
        let key = (feature.to_string(), class.to_string());
        let current = self
            .weights
            .get(feature)
            .and_then(|m| m.get(class))
            .copied()
            .unwrap_or(0.0);
        // Lazily account the time this weight value has been in effect.
        let since = self.timestamps.get(&key).copied().unwrap_or(0);
        *self.totals.entry(key.clone()).or_insert(0.0) += (self.instances - since) as f64 * current;
        self.timestamps.insert(key, self.instances);
        self.weights
            .entry(feature.to_string())
            .or_default()
            .insert(class.to_string(), current + delta);
    }

    /// Replace every weight with its average over the training run.  Call
    /// once after the final epoch.
    pub fn average(&mut self) {
        if self.averaged || self.instances == 0 {
            self.averaged = true;
            return;
        }
        for (feature, per_class) in self.weights.iter_mut() {
            for (class, w) in per_class.iter_mut() {
                let key = (feature.clone(), class.clone());
                let since = self.timestamps.get(&key).copied().unwrap_or(0);
                let total = self.totals.get(&key).copied().unwrap_or(0.0)
                    + (self.instances - since) as f64 * *w;
                *w = total / self.instances as f64;
            }
        }
        self.averaged = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn features(words: &[&str]) -> Vec<String> {
        words.iter().map(|w| format!("w={w}")).collect()
    }

    #[test]
    fn learns_a_linearly_separable_toy_problem() {
        let mut p = AveragedPerceptron::new(vec!["animal".into(), "city".into()]);
        let animals = [vec!["cat"], vec!["dog"], vec!["cat", "dog"], vec!["horse"]];
        let cities = [
            vec!["paris"],
            vec!["berlin"],
            vec!["paris", "berlin"],
            vec!["rome"],
        ];
        for _ in 0..5 {
            for a in &animals {
                let f = features(a);
                let guess = p.predict(&f);
                p.update("animal", &guess, &f);
            }
            for c in &cities {
                let f = features(c);
                let guess = p.predict(&f);
                p.update("city", &guess, &f);
            }
        }
        p.average();
        assert_eq!(p.predict(&features(&["cat"])), "animal");
        assert_eq!(p.predict(&features(&["berlin"])), "city");
        assert_eq!(p.predict(&features(&["dog", "horse"])), "animal");
        assert!(p.num_features() > 0);
    }

    #[test]
    fn prediction_is_deterministic_for_unseen_features() {
        let p = AveragedPerceptron::new(vec!["b".into(), "a".into()]);
        // All scores are 0; tie-break is alphabetical.
        assert_eq!(p.predict(&features(&["unseen"])), "a");
    }

    #[test]
    fn update_with_correct_guess_changes_nothing() {
        let mut p = AveragedPerceptron::new(vec!["x".into(), "y".into()]);
        p.update("x", "x", &features(&["f"]));
        assert_eq!(p.num_features(), 0);
    }

    #[test]
    fn averaging_is_idempotent() {
        let mut p = AveragedPerceptron::new(vec!["x".into(), "y".into()]);
        let f = features(&["f"]);
        let guess = p.predict(&f);
        p.update("x", &guess, &f);
        p.average();
        let w1 = p.scores(&f);
        p.average();
        let w2 = p.scores(&f);
        assert_eq!(w1, w2);
    }

    #[test]
    fn scores_are_sorted_descending() {
        let mut p = AveragedPerceptron::new(vec!["x".into(), "y".into()]);
        for _ in 0..3 {
            let f = features(&["f"]);
            let guess = p.predict(&f);
            p.update("x", &guess, &f);
        }
        p.average();
        let scores = p.scores(&features(&["f"]));
        assert_eq!(scores[0].0, "x");
        assert!(scores[0].1 >= scores[1].1);
    }
}
