//! A built-in synonym / topic lexicon.
//!
//! The original KGQAn computes semantic affinity with FastText vectors
//! trained on a million-word news vocabulary, in which related words (wife /
//! spouse, flow / outflow) are close.  We cannot ship those vectors, so the
//! substitute embedding ([`crate::embedding`]) is *seeded* with this lexicon:
//! words that belong to the same topic group share a strong common component
//! in their vectors, which reproduces the property the linker actually relies
//! on — that a question phrase ranks its semantically-equivalent predicate /
//! vertex above distractors.
//!
//! The lexicon is general English vocabulary (family relations, geography,
//! scholarly publishing, film, politics, …); it is **not** derived from any
//! target knowledge graph, so the "no per-KG prior knowledge" property of the
//! paper is preserved.

/// Topic groups: words within one group are treated as near-synonyms.
pub const SYNONYM_GROUPS: &[&[&str]] = &[
    // family / people
    &["wife", "husband", "spouse", "married", "marry", "partner"],
    &["child", "children", "son", "daughter", "kid"],
    &["parent", "father", "mother", "parents"],
    &["sibling", "brother", "sister"],
    // birth / death
    &["born", "birth", "birthplace", "birthday", "birthdate"],
    &["die", "died", "death", "deathplace", "dead"],
    // geography
    &["city", "cities", "town", "municipality", "settlement"],
    &["country", "nation", "state", "countries"],
    &["capital"],
    &["river", "stream", "tributary"],
    &["sea", "ocean", "gulf", "bay", "water", "strait"],
    &["lake"],
    &["mountain", "peak", "mount", "hill"],
    &["flow", "flows", "outflow", "inflow", "mouth", "drains"],
    &["shore", "coast", "coastline", "nearest", "near", "beside"],
    &["located", "location", "place", "situated", "lies"],
    &[
        "border",
        "borders",
        "bordering",
        "neighbour",
        "neighbor",
        "adjacent",
    ],
    &["population", "inhabitants", "people", "populous"],
    &["area", "size", "extent"],
    &["height", "tall", "elevation", "high"],
    &["length", "long", "distance"],
    &["language", "languages", "speak", "spoken", "official"],
    &["currency", "money"],
    // scholarly publishing (DBLP / MAG domain)
    &[
        "author", "authors", "authored", "writer", "wrote", "written", "write", "creator",
    ],
    &[
        "paper",
        "papers",
        "publication",
        "publications",
        "article",
        "articles",
        "work",
    ],
    &[
        "cite",
        "cited",
        "cites",
        "citation",
        "citations",
        "references",
        "reference",
    ],
    &["conference", "venue", "journal", "proceedings"],
    &["published", "publish", "publisher", "appeared"],
    &[
        "university",
        "college",
        "institution",
        "affiliation",
        "affiliated",
        "school",
        "member",
    ],
    &["field", "topic", "subject", "discipline", "studies"],
    &["advisor", "supervisor", "supervised", "doctoral"],
    &["coauthor", "collaborator", "collaborated", "colleague"],
    &["year", "date", "when", "time", "published"],
    // film / arts
    &["film", "movie", "films", "movies"],
    &["director", "directed", "direct", "filmmaker"],
    &[
        "starring", "star", "starred", "actor", "actress", "cast", "played", "plays",
    ],
    &["album", "song", "music", "band", "singer", "musician"],
    &["book", "novel", "books", "novels"],
    // organisations / politics
    &[
        "company",
        "corporation",
        "firm",
        "organisation",
        "organization",
    ],
    &[
        "founded",
        "founder",
        "founders",
        "established",
        "created",
        "creator",
    ],
    &[
        "president",
        "leader",
        "head",
        "chief",
        "chancellor",
        "premier",
    ],
    &["mayor", "governor"],
    &["member", "members", "part", "belongs", "belong"],
    &["party", "political"],
    &["award", "prize", "won", "win", "winner", "awarded", "nobel"],
    &["team", "club", "squad"],
    &[
        "employer",
        "employed",
        "works",
        "work",
        "working",
        "job",
        "occupation",
        "profession",
    ],
    &["owner", "owns", "owned", "belongs"],
    &[
        "studied",
        "study",
        "graduated",
        "graduate",
        "education",
        "educated",
        "alumni",
    ],
    &[
        "developed",
        "develop",
        "developer",
        "invented",
        "inventor",
        "designed",
        "designer",
    ],
    &["headquarters", "headquartered", "based", "seat"],
    &["type", "kind", "category", "class"],
    &["name", "called", "named", "title", "label"],
];

/// The index of the topic group containing `word`, if any.
pub fn group_of(word: &str) -> Option<usize> {
    let lower = word.to_lowercase();
    SYNONYM_GROUPS
        .iter()
        .position(|group| group.contains(&lower.as_str()))
}

/// True if two words belong to the same topic group.
pub fn same_group(a: &str, b: &str) -> bool {
    match (group_of(a), group_of(b)) {
        (Some(x), Some(y)) => x == y,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_motivated_pairs_are_grouped() {
        // "wife" maps to dbo:spouse (§5.2).
        assert!(same_group("wife", "spouse"));
        // "flow" maps to dbp:outflow (running example).
        assert!(same_group("flow", "outflow"));
        assert!(same_group("flows", "outflow"));
        // "city on shore" relates to dbo:nearestCity.
        assert!(same_group("shore", "nearest"));
        assert!(same_group("city", "cities"));
        // Scholarly domain for DBLP/MAG.
        assert!(same_group("wrote", "author"));
        assert!(same_group("paper", "publication"));
    }

    #[test]
    fn unrelated_words_are_not_grouped() {
        assert!(!same_group("wife", "river"));
        assert!(!same_group("sea", "paper"));
        assert!(!same_group("zanzibar", "qwerty"));
    }

    #[test]
    fn group_lookup_is_case_insensitive() {
        assert_eq!(group_of("Wife"), group_of("spouse"));
        assert!(group_of("WIFE").is_some());
    }

    #[test]
    fn every_group_word_maps_back_to_its_group() {
        for (i, group) in SYNONYM_GROUPS.iter().enumerate() {
            for word in *group {
                let found = group_of(word).unwrap();
                // A word may occur in more than one group (e.g. "work");
                // position() returns the first, which must be <= i.
                assert!(found <= i, "word {word} mapped to later group");
            }
        }
    }
}
