//! Question tokenization.
//!
//! Produces tokens that keep both the original surface form (needed when a
//! phrase is copied verbatim into a triple pattern, e.g. "Danish Straits")
//! and a lowercase form used by the feature extractors and embeddings.

/// A single question token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The surface form as it appeared in the question.
    pub surface: String,
    /// Lowercased form.
    pub lower: String,
    /// True if the surface form starts with an uppercase letter.
    pub capitalized: bool,
    /// True if the token is purely numeric.
    pub numeric: bool,
}

impl Token {
    /// Build a token from a surface string.
    pub fn new(surface: &str) -> Self {
        let lower = surface.to_lowercase();
        let capitalized = surface.chars().next().is_some_and(|c| c.is_uppercase());
        let numeric = !surface.is_empty() && surface.chars().all(|c| c.is_ascii_digit());
        Token {
            surface: surface.to_string(),
            lower,
            capitalized,
            numeric,
        }
    }
}

/// English stop words ignored by phrase matching and the affinity model.
pub const STOP_WORDS: &[&str] = &[
    "a", "an", "the", "of", "in", "on", "at", "to", "for", "by", "with", "as", "is", "are", "was",
    "were", "be", "been", "does", "do", "did", "and", "or", "that", "which", "whose", "into",
    "from", "has", "have", "had", "one", "its", "it", "this", "these", "those", "there", "also",
    "many", "much", "most", "all", "any", "some", "s",
];

/// True if `word` (lowercase) is a stop word.
pub fn is_stop_word(word: &str) -> bool {
    STOP_WORDS.contains(&word)
}

/// Question words that introduce unknowns.
pub const QUESTION_WORDS: &[&str] = &[
    "who", "whom", "what", "which", "where", "when", "how", "why", "whose", "name", "list", "give",
    "show", "tell", "count",
];

/// Tokenize a natural-language question into [`Token`]s.
///
/// Splits on whitespace and punctuation but keeps intra-word hyphens and
/// apostrophes ("Covid-19", "O'Brien") together.
pub fn tokenize_question(question: &str) -> Vec<Token> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    for c in question.chars() {
        let keep = c.is_alphanumeric() || c == '-' || c == '\'';
        if keep {
            current.push(c);
        } else if !current.is_empty() {
            tokens.push(Token::new(&current));
            current.clear();
        }
    }
    if !current.is_empty() {
        tokens.push(Token::new(&current));
    }
    tokens
}

/// Lowercase, strip punctuation, collapse whitespace — used as the
/// canonical form when comparing questions or building classifier features.
pub fn normalize_question(question: &str) -> String {
    tokenize_question(question)
        .into_iter()
        .map(|t| t.lower)
        .collect::<Vec<_>>()
        .join(" ")
}

/// Remove stop words from a phrase (lowercased), keeping word order.
pub fn content_words(phrase: &str) -> Vec<String> {
    tokenize_question(phrase)
        .into_iter()
        .map(|t| t.lower)
        .filter(|w| !is_stop_word(w))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_running_example() {
        let q = "Name the sea into which Danish Straits flows and has Kaliningrad as one of the city on the shore";
        let tokens = tokenize_question(q);
        assert_eq!(tokens.len(), 19);
        assert_eq!(tokens[0].surface, "Name");
        assert!(tokens[0].capitalized);
        let danish = tokens.iter().find(|t| t.surface == "Danish").unwrap();
        assert!(danish.capitalized);
        assert_eq!(danish.lower, "danish");
    }

    #[test]
    fn keeps_hyphens_and_apostrophes() {
        let tokens = tokenize_question("When did Covid-19 start in O'Brien's country?");
        let surfaces: Vec<&str> = tokens.iter().map(|t| t.surface.as_str()).collect();
        assert!(surfaces.contains(&"Covid-19"));
        assert!(surfaces.contains(&"O'Brien's"));
    }

    #[test]
    fn numeric_detection() {
        let tokens = tokenize_question("population of 431000 people in 1945");
        assert!(tokens.iter().any(|t| t.numeric && t.surface == "431000"));
        assert!(tokens.iter().any(|t| t.numeric && t.surface == "1945"));
        assert!(
            !tokens
                .iter()
                .find(|t| t.surface == "people")
                .unwrap()
                .numeric
        );
    }

    #[test]
    fn normalization_strips_punctuation_and_case() {
        assert_eq!(
            normalize_question("Who is the wife of Barack Obama?"),
            "who is the wife of barack obama"
        );
        assert_eq!(normalize_question("  "), "");
    }

    #[test]
    fn stop_words_and_content_words() {
        assert!(is_stop_word("the"));
        assert!(!is_stop_word("sea"));
        assert_eq!(
            content_words("the city on the shore"),
            vec!["city", "shore"]
        );
        assert_eq!(content_words("of the"), Vec::<String>::new());
    }

    #[test]
    fn empty_question_yields_no_tokens() {
        assert!(tokenize_question("").is_empty());
        assert!(tokenize_question("?!...").is_empty());
    }
}
