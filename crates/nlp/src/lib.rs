//! # kgqan-nlp
//!
//! The natural-language substrate KGQAn builds on.  The original system uses
//! off-the-shelf neural components (BART / GPT-3 Seq2Seq models, the FastText
//! `wiki-news-300d-1M` word vectors, chars2vec, the AllenNLP constituency
//! parser); none of these are available as pure-Rust artifacts, so this crate
//! provides *trainable, deterministic substitutes* with the same interfaces
//! and the same role in the pipeline (see DESIGN.md §3 for the substitution
//! argument):
//!
//! * [`tokenizer`] — question tokenization and stop-word handling,
//! * [`lexicon`] — a lightweight part-of-speech tagger (the stand-in for the
//!   constituency parser used by the first-noun semantic-type heuristic),
//! * [`synonyms`] — a built-in synonym/topic lexicon seeding the embedding
//!   space so that e.g. *wife* ≈ *spouse* and *flow* ≈ *outflow*,
//! * [`embedding`] — word embeddings (FastText substitute), character
//!   n-gram embeddings for out-of-vocabulary words (chars2vec substitute) and
//!   mean-pooled sentence embeddings (GPT-3 coarse-grained substitute),
//! * [`seq2seq`] — the **triple pattern generator**: a trainable averaged
//!   perceptron sequence tagger plus a deterministic triple assembler, the
//!   substitute for the fine-tuned BART/GPT-3 Seq2Seq model of Section 4,
//! * [`answer_type`] — the answer data-type classifier (date / numeric /
//!   boolean / string) and the first-noun semantic-type heuristic of §4.3,
//! * [`corpus`] — the annotated training corpus generator standing in for
//!   the 1,752 manually annotated questions of §4.1.2.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod answer_type;
pub mod corpus;
pub mod embedding;
pub mod lexicon;
pub mod perceptron;
pub mod seq2seq;
pub mod synonyms;
pub mod tokenizer;

pub use answer_type::{AnswerDataType, AnswerTypeClassifier, AnswerTypePrediction};
pub use corpus::{training_corpus, AnnotatedQuestion};
pub use embedding::{
    CharNgramEmbedding, EmbeddingProvider, SentenceEmbedder, WordEmbedding, EMBEDDING_DIM,
};
pub use lexicon::{pos_tag, PosTag};
pub use seq2seq::{
    BioTag, PhraseNode, PhraseTriple, PhraseTriplePattern, Seq2SeqVariant, TriplePatternGenerator,
};
pub use tokenizer::{normalize_question, tokenize_question, Token};
