//! Answer equivalence and provenance-merged ranking.
//!
//! Different KGs name the same real-world entity differently: DBpedia says
//! `dbr:Michelle_Obama`, another graph may return the literal
//! `"Michelle Obama"`.  The federation layer deduplicates per-KG answers by
//! a normalised *equivalence key* ([`answer_key`]) and re-ranks the merged
//! set with an agreement-boosted combined score: answers that several KGs
//! independently produced outrank single-source answers of the same base
//! score.

use std::cmp::Ordering;
use std::collections::BTreeMap;

use kgqan_rdf::Term;

/// Relative boost per *additional* agreeing KG: the combined score of a
/// merged answer is `mean(per-KG best scores) × (1 + BOOST × (k − 1))`
/// where `k` is the number of distinct KGs that produced the answer.
pub const AGREEMENT_BOOST: f64 = 0.25;

/// One KG's vote for one answer term, carrying the KG's own ranking score
/// (the best Equation-2 query score that produced the term on that KG).
#[derive(Debug, Clone, PartialEq)]
pub struct ScoredAnswer {
    /// The registered KG name that produced the term.
    pub kg: String,
    /// The answer term as that KG returned it.
    pub term: Term,
    /// The KG-local ranking score of the term.
    pub score: f64,
}

/// A merged, provenance-tagged answer: the representative term (from the
/// highest-scoring contribution), the agreement-boosted combined score, and
/// the sorted list of KGs that agreed on it.
#[derive(Debug, Clone, PartialEq)]
pub struct FederatedAnswer {
    /// The representative term, taken from the highest-scoring vote.
    pub term: Term,
    /// Combined score: mean of per-KG best scores, boosted by agreement
    /// (see [`AGREEMENT_BOOST`]).
    pub score: f64,
    /// The distinct KGs that produced an equivalent term, sorted by name.
    pub kgs: Vec<String>,
}

impl FederatedAnswer {
    /// Number of distinct KGs that agreed on this answer.
    pub fn agreement(&self) -> usize {
        self.kgs.len()
    }
}

/// The equivalence key under which per-KG answers are deduplicated.
///
/// * Literals compare by trimmed, lowercased lexical form (datatype and
///   language tag are ignored — `"Berlin"@en` and `"berlin"` merge).
/// * IRIs compare by their last path segment (after the final `/` or `#`)
///   with `_` mapped to space and lowercased, so `dbr:Michelle_Obama`
///   merges with the literal `"Michelle Obama"`.
/// * Blank nodes compare by label; cross-KG blank labels are coincidental,
///   but blank answers are rare enough that a deterministic key beats a
///   per-KG unique one.
pub fn answer_key(term: &Term) -> String {
    match term {
        Term::Iri(iri) => {
            let tail = iri.trim_end_matches(['/', '#']);
            let segment = tail.rsplit(['/', '#']).next().unwrap_or(tail);
            segment.replace('_', " ").to_lowercase()
        }
        Term::Literal(lit) => lit.lexical.trim().to_lowercase(),
        Term::Blank(label) => format!("_:{}", label.to_lowercase()),
    }
}

struct Group {
    /// Highest single-vote score seen so far, electing the representative.
    best: f64,
    term: Term,
    /// Best score per contributing KG.
    per_kg: BTreeMap<String, f64>,
}

/// Merge per-KG answer votes into a deduplicated, re-ranked answer list.
///
/// Votes whose terms share an [`answer_key`] collapse into one
/// [`FederatedAnswer`]; within one KG only its best score for the key
/// counts.  The result is sorted by combined score descending (ties broken
/// by key, ascending, for determinism).
pub fn merge_answers(votes: &[ScoredAnswer]) -> Vec<FederatedAnswer> {
    let mut groups: BTreeMap<String, Group> = BTreeMap::new();
    for vote in votes {
        let key = answer_key(&vote.term);
        let group = groups.entry(key).or_insert_with(|| Group {
            best: f64::NEG_INFINITY,
            term: vote.term.clone(),
            per_kg: BTreeMap::new(),
        });
        if vote.score > group.best {
            group.best = vote.score;
            group.term = vote.term.clone();
        }
        let kg_best = group.per_kg.entry(vote.kg.clone()).or_insert(vote.score);
        if vote.score > *kg_best {
            *kg_best = vote.score;
        }
    }

    let mut merged: Vec<FederatedAnswer> = groups
        .into_values()
        .map(|group| {
            let agreement = group.per_kg.len() as f64;
            let mean = group.per_kg.values().sum::<f64>() / agreement;
            FederatedAnswer {
                term: group.term,
                score: mean * (1.0 + AGREEMENT_BOOST * (agreement - 1.0)),
                kgs: group.per_kg.into_keys().collect(),
            }
        })
        .collect();
    merged.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(Ordering::Equal)
            .then_with(|| answer_key(&a.term).cmp(&answer_key(&b.term)))
    });
    merged
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vote(kg: &str, term: Term, score: f64) -> ScoredAnswer {
        ScoredAnswer {
            kg: kg.to_string(),
            term,
            score,
        }
    }

    #[test]
    fn key_normalises_iris_and_literals_to_the_same_form() {
        let iri = Term::iri("http://dbpedia.org/resource/Michelle_Obama");
        let lit = Term::literal_str("  Michelle OBAMA ");
        assert_eq!(answer_key(&iri), "michelle obama");
        assert_eq!(answer_key(&iri), answer_key(&lit));
        // Fragment IRIs key by the fragment.
        assert_eq!(answer_key(&Term::iri("http://ex.org/ont#Berlin")), "berlin");
        // Trailing separators do not produce an empty key.
        assert_eq!(answer_key(&Term::iri("http://ex.org/Berlin/")), "berlin");
    }

    #[test]
    fn agreement_boosts_the_combined_score() {
        let michelle = Term::iri("http://dbpedia.org/resource/Michelle_Obama");
        let merged = merge_answers(&[
            vote("DBpedia", michelle.clone(), 0.8),
            vote("Wikidata", Term::literal_str("Michelle Obama"), 0.6),
            vote(
                "DBpedia",
                Term::iri("http://dbpedia.org/resource/Other"),
                0.9,
            ),
        ]);
        assert_eq!(merged.len(), 2);
        // Single-source 0.9 stays 0.9; the agreed answer scores
        // mean(0.8, 0.6) × 1.25 = 0.875.
        assert_eq!(merged[0].score, 0.9);
        assert_eq!(merged[0].kgs, vec!["DBpedia".to_string()]);
        assert!((merged[1].score - 0.875).abs() < 1e-9);
        assert_eq!(
            merged[1].kgs,
            vec!["DBpedia".to_string(), "Wikidata".to_string()]
        );
        // The representative term comes from the highest-scoring vote.
        assert_eq!(merged[1].term, michelle);
    }

    #[test]
    fn within_one_kg_only_the_best_score_counts() {
        let term = Term::literal_str("Berlin");
        let merged = merge_answers(&[
            vote("DBpedia", term.clone(), 0.4),
            vote("DBpedia", term.clone(), 0.7),
        ]);
        assert_eq!(merged.len(), 1);
        // One KG, two votes: no agreement boost, best score wins the mean.
        assert_eq!(merged[0].score, 0.7);
        assert_eq!(merged[0].agreement(), 1);
    }

    #[test]
    fn ties_order_deterministically_by_key() {
        let merged = merge_answers(&[
            vote("A", Term::literal_str("zebra"), 0.5),
            vote("A", Term::literal_str("aardvark"), 0.5),
        ]);
        assert_eq!(merged[0].term, Term::literal_str("aardvark"));
        assert_eq!(merged[1].term, Term::literal_str("zebra"));
    }

    #[test]
    fn empty_votes_merge_to_no_answers() {
        assert!(merge_answers(&[]).is_empty());
    }
}
