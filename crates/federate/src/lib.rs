//! # kgqan-federate
//!
//! Cross-KG federation for KGQAn: fan one natural-language question out to
//! a selected set of registered KGs, merge the per-KG answers into one
//! provenance-tagged, agreement-ranked list, and report every KG's outcome
//! — even when some of them time out or fail.
//!
//! The entry point is [`FederatedEndpoint`], a thin layer over
//! [`QaService`]:
//!
//! 1. **Fan-out** — the request's [`KgSelection`] is resolved against the
//!    service's registered KG names.  Unknown names become per-KG
//!    [`KgStatus::Unknown`] reports (HTTP 404 at the serving layer); the
//!    remaining KGs are asked concurrently through
//!    [`QaService::answer_batch_within`], each under an equal share of the
//!    request's deadline ([`kgqan::Budget::split`]), so one stalled KG can
//!    never starve its siblings.
//! 2. **Merge** — per-KG answers are deduplicated by a normalised
//!    equivalence key ([`answer_key`]) and re-ranked with an
//!    agreement-boosted combined score ([`merge_answers`]); every merged
//!    answer lists the KGs that agreed on it and the response carries one
//!    [`AnswerSource`] per contributing KG.
//! 3. **Degrade, don't fail** — a KG that errors or runs out of budget
//!    yields a [`KgStatus::Failed`] / [`KgStatus::Partial`] report and the
//!    overall verdict becomes [`BudgetVerdict::Partial`]; the federated
//!    request itself only errors when it selects no KGs at all.
//!
//! ```
//! use std::sync::Arc;
//! use kgqan::QaService;
//! use kgqan::understanding::QuestionUnderstanding;
//! use kgqan_endpoint::InProcessEndpoint;
//! use kgqan_federate::{FederatedEndpoint, FederatedRequest};
//! use kgqan_rdf::{Store, Term, Triple, vocab};
//!
//! fn spouse_store() -> Store {
//!     let mut store = Store::new();
//!     let obama = Term::iri("http://dbpedia.org/resource/Barack_Obama");
//!     let michelle = Term::iri("http://dbpedia.org/resource/Michelle_Obama");
//!     store.insert_all([
//!         Triple::new(obama.clone(), Term::iri(vocab::RDFS_LABEL),
//!                     Term::literal_str("Barack Obama")),
//!         Triple::new(michelle.clone(), Term::iri(vocab::RDFS_LABEL),
//!                     Term::literal_str("Michelle Obama")),
//!         Triple::new(obama, Term::iri("http://dbpedia.org/ontology/spouse"), michelle),
//!     ]);
//!     store
//! }
//!
//! let service = QaService::builder()
//!     .understanding(QuestionUnderstanding::train_default())
//!     .endpoint(Arc::new(InProcessEndpoint::new("DBpedia", spouse_store())))
//!     .endpoint(Arc::new(InProcessEndpoint::new("Mirror", spouse_store())))
//!     .build()
//!     .unwrap();
//! let federated = FederatedEndpoint::new(service);
//!
//! let response = federated
//!     .ask(FederatedRequest::new("Who is the wife of Barack Obama?"))
//!     .unwrap();
//! // Both KGs agree, so the merged answer carries two-KG provenance.
//! assert_eq!(response.answers[0].kgs, vec!["DBpedia".to_string(), "Mirror".to_string()]);
//! assert_eq!(response.sources.len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod merge;

pub use merge::{answer_key, merge_answers, FederatedAnswer, ScoredAnswer, AGREEMENT_BOOST};

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use kgqan::{
    AnswerRequest, AnswerSource, Budget, BudgetVerdict, ConfigOverrides, KgqanError, QaService,
};
use kgqan_endpoint::EndpointError;

/// Which registered KGs a federated request targets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KgSelection {
    /// Every KG currently registered with the service (the HTTP layer
    /// spells this `"*"`).
    All,
    /// An explicit list of KG names.  Unknown names degrade to per-KG
    /// [`KgStatus::Unknown`] reports instead of failing the request.
    Named(Vec<String>),
}

/// One federated question: the text, the KG selection, and the optional
/// whole-request deadline that is split evenly across the selected KGs.
#[derive(Debug, Clone)]
pub struct FederatedRequest {
    /// The natural-language question.
    pub question: String,
    /// The KGs to fan out to.
    pub kgs: KgSelection,
    /// Whole-request deadline; each selected KG gets an equal share
    /// (floored at [`kgqan::Budget::MIN_SPLIT_SHARE`]).
    pub deadline: Option<Duration>,
    /// Per-request configuration overrides, applied on every KG.
    pub overrides: ConfigOverrides,
    /// Client-supplied request id; the endpoint assigns one when absent.
    pub id: Option<String>,
}

impl FederatedRequest {
    /// A request fanning out to every registered KG, with no deadline.
    pub fn new(question: impl Into<String>) -> Self {
        FederatedRequest {
            question: question.into(),
            kgs: KgSelection::All,
            deadline: None,
            overrides: ConfigOverrides::none(),
            id: None,
        }
    }

    /// Restrict the fan-out to the named KGs.
    pub fn on_kgs<I, S>(mut self, names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.kgs = KgSelection::Named(names.into_iter().map(Into::into).collect());
        self
    }

    /// Set the whole-request deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Set per-request configuration overrides.
    pub fn with_overrides(mut self, overrides: ConfigOverrides) -> Self {
        self.overrides = overrides;
        self
    }

    /// Set the client-supplied request id.
    pub fn with_id(mut self, id: impl Into<String>) -> Self {
        self.id = Some(id.into());
        self
    }
}

/// The outcome of one KG's share of a federated request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KgStatus {
    /// The KG completed within its budget share.
    Answered,
    /// The KG's share of the deadline expired; any answers it produced
    /// before the cut-off are still merged.
    Partial,
    /// The selection named a KG that is not registered.
    Unknown {
        /// The sorted list of registered KG names.
        available: Vec<String>,
    },
    /// The KG's pipeline failed outright.
    Failed {
        /// The rendered error.
        message: String,
    },
}

impl KgStatus {
    /// The HTTP status code the serving layer reports for this KG's entry:
    /// 200 for [`Answered`](KgStatus::Answered) and
    /// [`Partial`](KgStatus::Partial), 404 for
    /// [`Unknown`](KgStatus::Unknown), 500 for
    /// [`Failed`](KgStatus::Failed).
    pub fn http_status(&self) -> u16 {
        match self {
            KgStatus::Answered | KgStatus::Partial => 200,
            KgStatus::Unknown { .. } => 404,
            KgStatus::Failed { .. } => 500,
        }
    }

    /// Short machine-readable label for metrics and JSON.
    pub fn label(&self) -> &'static str {
        match self {
            KgStatus::Answered => "answered",
            KgStatus::Partial => "partial",
            KgStatus::Unknown { .. } => "unknown",
            KgStatus::Failed { .. } => "failed",
        }
    }
}

/// One KG's report inside a [`FederatedResponse`], in selection order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KgReport {
    /// The KG name as it appeared in the selection.
    pub kg: String,
    /// What happened on this KG.
    pub status: KgStatus,
    /// Wall-clock time this KG's pipeline run took (zero for KGs that
    /// never ran).
    pub elapsed: Duration,
    /// How many answers this KG contributed before merging.
    pub answers: usize,
}

/// The merged outcome of a federated request.
#[derive(Debug, Clone)]
pub struct FederatedResponse {
    /// The request id (client-supplied or endpoint-assigned).
    pub request_id: String,
    /// The question as asked.
    pub question: String,
    /// Deduplicated answers, ranked by agreement-boosted combined score.
    pub answers: Vec<FederatedAnswer>,
    /// Majority Boolean verdict for yes/no questions (ties resolve to the
    /// first reporting KG in selection order).
    pub boolean: Option<bool>,
    /// [`BudgetVerdict::Completed`] only when every selected KG answered
    /// completely; any unknown, failed, or deadline-cut KG degrades the
    /// whole response to [`BudgetVerdict::Partial`].
    pub verdict: BudgetVerdict,
    /// Per-KG outcomes, in selection order.
    pub reports: Vec<KgReport>,
    /// Provenance: one [`AnswerSource`] per KG that contributed evidence.
    pub sources: Vec<AnswerSource>,
    /// Wall-clock time of the whole fan-out.
    pub elapsed: Duration,
}

impl FederatedResponse {
    /// True if any selected KG failed, was unknown, or ran out of budget.
    pub fn is_partial(&self) -> bool {
        self.verdict.is_partial()
    }
}

/// Fans federated requests out to the KGs registered with a [`QaService`]
/// and merges the per-KG outcomes.  See the [crate docs](crate) for the
/// data flow.
pub struct FederatedEndpoint {
    service: QaService,
    next_id: AtomicU64,
}

impl FederatedEndpoint {
    /// Wrap a service; the service's registered KGs form the federation.
    pub fn new(service: QaService) -> Self {
        FederatedEndpoint {
            service,
            next_id: AtomicU64::new(1),
        }
    }

    /// The wrapped service (for cache reports, registry access, ingest).
    pub fn service(&self) -> &QaService {
        &self.service
    }

    /// Answer one question across the selected KGs.
    ///
    /// Errors only when the selection resolves to zero KGs (nothing
    /// registered, or an explicitly empty list); every per-KG problem —
    /// unknown name, pipeline failure, expired budget share — degrades to
    /// that KG's [`KgReport`] while the remaining KGs still answer.
    pub fn ask(&self, request: FederatedRequest) -> Result<FederatedResponse, KgqanError> {
        let budget = Budget::start(request.deadline);
        let registered = self.service.kg_names();
        let mut selection: Vec<String> = match &request.kgs {
            KgSelection::All => registered.clone(),
            KgSelection::Named(names) => names.clone(),
        };
        // Dedupe while preserving selection order: one report per KG.
        let mut seen = std::collections::BTreeSet::new();
        selection.retain(|name| seen.insert(name.clone()));
        if selection.is_empty() {
            return Err(KgqanError::Configuration(
                "federated request selects no KGs (none registered or empty selection)".into(),
            ));
        }
        let request_id = request
            .id
            .clone()
            .unwrap_or_else(|| format!("fed-{}", self.next_id.fetch_add(1, Ordering::Relaxed)));

        let known: Vec<String> = selection
            .iter()
            .filter(|name| registered.contains(name))
            .cloned()
            .collect();
        let requests: Vec<AnswerRequest> = known
            .iter()
            .map(|kg| {
                AnswerRequest::new(&request.question)
                    .on_kg(kg.clone())
                    .with_overrides(request.overrides)
                    .with_id(format!("{request_id}/{kg}"))
            })
            .collect();
        let results = self.service.answer_batch_within(&requests, &budget);

        let mut report_for = std::collections::HashMap::with_capacity(selection.len());
        let mut votes = Vec::new();
        let mut sources = Vec::new();
        let mut booleans = Vec::new();
        for (kg, result) in known.iter().zip(results) {
            match result {
                Ok(response) => {
                    let status = if response.is_partial() {
                        KgStatus::Partial
                    } else {
                        KgStatus::Answered
                    };
                    for (i, term) in response.outcome.answers.iter().enumerate() {
                        votes.push(ScoredAnswer {
                            kg: kg.clone(),
                            term: term.clone(),
                            score: response.answer_scores.get(i).copied().unwrap_or(0.0),
                        });
                    }
                    if let Some(b) = response.outcome.boolean {
                        booleans.push(b);
                    }
                    sources.extend(response.sources.iter().cloned());
                    report_for.insert(
                        kg.clone(),
                        KgReport {
                            kg: kg.clone(),
                            status,
                            elapsed: response.elapsed,
                            answers: response.outcome.answers.len(),
                        },
                    );
                }
                Err(error) => {
                    let status = match &error {
                        KgqanError::Endpoint(EndpointError::UnknownEndpoint {
                            available, ..
                        }) => KgStatus::Unknown {
                            available: available.clone(),
                        },
                        other => KgStatus::Failed {
                            message: other.to_string(),
                        },
                    };
                    report_for.insert(
                        kg.clone(),
                        KgReport {
                            kg: kg.clone(),
                            status,
                            elapsed: Duration::ZERO,
                            answers: 0,
                        },
                    );
                }
            }
        }
        let reports: Vec<KgReport> = selection
            .iter()
            .map(|kg| {
                report_for.remove(kg).unwrap_or_else(|| KgReport {
                    kg: kg.clone(),
                    status: KgStatus::Unknown {
                        available: registered.clone(),
                    },
                    elapsed: Duration::ZERO,
                    answers: 0,
                })
            })
            .collect();

        let answers = merge_answers(&votes);
        let boolean = if booleans.is_empty() {
            None
        } else {
            let trues = booleans.iter().filter(|b| **b).count();
            let falses = booleans.len() - trues;
            Some(match trues.cmp(&falses) {
                std::cmp::Ordering::Greater => true,
                std::cmp::Ordering::Less => false,
                std::cmp::Ordering::Equal => booleans[0],
            })
        };
        let verdict = if reports
            .iter()
            .all(|report| report.status == KgStatus::Answered)
        {
            BudgetVerdict::Completed
        } else {
            BudgetVerdict::Partial
        };

        Ok(FederatedResponse {
            request_id,
            question: request.question,
            answers,
            boolean,
            verdict,
            reports,
            sources,
            elapsed: budget.elapsed(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use kgqan::understanding::QuestionUnderstanding;
    use kgqan_endpoint::InProcessEndpoint;
    use kgqan_rdf::{vocab, Store, Term, Triple};

    fn spouse_store() -> Store {
        let mut store = Store::new();
        let obama = Term::iri("http://dbpedia.org/resource/Barack_Obama");
        let michelle = Term::iri("http://dbpedia.org/resource/Michelle_Obama");
        store.insert_all([
            Triple::new(
                obama.clone(),
                Term::iri(vocab::RDFS_LABEL),
                Term::literal_str("Barack Obama"),
            ),
            Triple::new(
                michelle.clone(),
                Term::iri(vocab::RDFS_LABEL),
                Term::literal_str("Michelle Obama"),
            ),
            Triple::new(
                obama,
                Term::iri("http://dbpedia.org/ontology/spouse"),
                michelle,
            ),
        ]);
        store
    }

    fn federation_of(endpoints: Vec<InProcessEndpoint>) -> FederatedEndpoint {
        let mut builder =
            QaService::builder().understanding(QuestionUnderstanding::train_default());
        for endpoint in endpoints {
            builder = builder.endpoint(Arc::new(endpoint));
        }
        FederatedEndpoint::new(builder.build().unwrap())
    }

    #[test]
    fn two_agreeing_kgs_merge_into_one_boosted_answer() {
        let federated = federation_of(vec![
            InProcessEndpoint::new("DBpedia", spouse_store()),
            InProcessEndpoint::new("Mirror", spouse_store()),
        ]);
        let response = federated
            .ask(FederatedRequest::new("Who is the wife of Barack Obama?"))
            .unwrap();

        assert_eq!(response.verdict, BudgetVerdict::Completed);
        assert!(!response.is_partial());
        let top = &response.answers[0];
        assert_eq!(
            top.term.as_iri(),
            Some("http://dbpedia.org/resource/Michelle_Obama")
        );
        assert_eq!(top.kgs, vec!["DBpedia".to_string(), "Mirror".to_string()]);
        assert!(top.score > 0.0);
        // Provenance: one source per contributing KG, with epochs.
        assert_eq!(response.sources.len(), 2);
        assert!(response.sources.iter().all(|s| s.epoch == Some(0)));
        let mut kgs: Vec<&str> = response.sources.iter().map(|s| s.kg.as_str()).collect();
        kgs.sort_unstable();
        assert_eq!(kgs, vec!["DBpedia", "Mirror"]);
        // Per-KG reports in selection order, all answered.
        assert_eq!(response.reports.len(), 2);
        assert!(response
            .reports
            .iter()
            .all(|r| r.status == KgStatus::Answered && r.status.http_status() == 200));
    }

    #[test]
    fn unknown_kg_degrades_to_a_404_report_while_others_answer() {
        let federated = federation_of(vec![InProcessEndpoint::new("DBpedia", spouse_store())]);
        let response = federated
            .ask(
                FederatedRequest::new("Who is the wife of Barack Obama?")
                    .on_kgs(["DBpedia", "YAGO"]),
            )
            .unwrap();

        assert_eq!(response.verdict, BudgetVerdict::Partial);
        assert_eq!(response.reports.len(), 2);
        assert_eq!(response.reports[0].kg, "DBpedia");
        assert_eq!(response.reports[0].status, KgStatus::Answered);
        assert_eq!(response.reports[1].kg, "YAGO");
        assert_eq!(response.reports[1].status.http_status(), 404);
        match &response.reports[1].status {
            KgStatus::Unknown { available } => {
                assert_eq!(available, &vec!["DBpedia".to_string()])
            }
            other => panic!("expected Unknown, got {other:?}"),
        }
        // The known KG still produced the answer.
        assert_eq!(
            response.answers[0].term.as_iri(),
            Some("http://dbpedia.org/resource/Michelle_Obama")
        );
        assert_eq!(response.sources.len(), 1);
    }

    #[test]
    fn all_kgs_out_of_budget_degrades_to_partial_not_error() {
        let federated = federation_of(vec![
            InProcessEndpoint::new("SlowA", spouse_store()).with_latency(Duration::from_millis(80)),
            InProcessEndpoint::new("SlowB", spouse_store()).with_latency(Duration::from_millis(80)),
        ]);
        let response = federated
            .ask(
                FederatedRequest::new("Who is the wife of Barack Obama?")
                    .with_deadline(Duration::from_millis(60)),
            )
            .unwrap();

        assert_eq!(response.verdict, BudgetVerdict::Partial);
        assert!(response
            .reports
            .iter()
            .all(|r| r.status == KgStatus::Partial && r.status.http_status() == 200));
    }

    #[test]
    fn one_stalled_kg_does_not_starve_its_sibling() {
        let federated = federation_of(vec![
            InProcessEndpoint::new("Fast", spouse_store()),
            InProcessEndpoint::new("Stalled", spouse_store())
                .with_latency(Duration::from_millis(120)),
        ]);
        let response = federated
            .ask(
                FederatedRequest::new("Who is the wife of Barack Obama?")
                    .with_deadline(Duration::from_millis(100)),
            )
            .unwrap();

        // Degraded overall, but the fast KG's answer survives with its
        // provenance attached.
        assert_eq!(response.verdict, BudgetVerdict::Partial);
        assert_eq!(
            response.answers[0].term.as_iri(),
            Some("http://dbpedia.org/resource/Michelle_Obama")
        );
        assert_eq!(response.answers[0].kgs, vec!["Fast".to_string()]);
        let fast = response.reports.iter().find(|r| r.kg == "Fast").unwrap();
        assert_eq!(fast.status, KgStatus::Answered);
        let stalled = response.reports.iter().find(|r| r.kg == "Stalled").unwrap();
        assert_eq!(stalled.status, KgStatus::Partial);
    }

    #[test]
    fn empty_selection_is_a_configuration_error() {
        let federated = federation_of(vec![InProcessEndpoint::new("DBpedia", spouse_store())]);
        let error = federated
            .ask(FederatedRequest::new("anything").on_kgs(Vec::<String>::new()))
            .unwrap_err();
        assert!(matches!(error, KgqanError::Configuration(_)));
    }

    #[test]
    fn duplicate_selection_entries_collapse_to_one_report() {
        let federated = federation_of(vec![InProcessEndpoint::new("DBpedia", spouse_store())]);
        let response = federated
            .ask(
                FederatedRequest::new("Who is the wife of Barack Obama?")
                    .on_kgs(["DBpedia", "DBpedia"]),
            )
            .unwrap();
        assert_eq!(response.reports.len(), 1);
        assert_eq!(response.verdict, BudgetVerdict::Completed);
    }
}
