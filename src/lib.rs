//! Umbrella crate for the KGQAn platform workspace.
//!
//! This package exists to anchor the top-level integration tests (`tests/`)
//! and runnable examples (`examples/`) in the Cargo workspace, and to offer a
//! single dependency that pulls in the whole platform.  The actual
//! implementation lives in the member crates:
//!
//! * [`kgqan`] — the three-phase QA pipeline (understanding → just-in-time
//!   linking → execution/filtration),
//! * [`kgqan_rdf`] — the in-memory RDF store with six-way indices and a
//!   built-in full-text index,
//! * [`kgqan_sparql`] — SPARQL parsing and evaluation,
//! * [`kgqan_nlp`] — deterministic substitutes for the neural NLP components,
//! * [`kgqan_endpoint`] — the endpoint abstraction KGQAn talks to.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use kgqan;
pub use kgqan_endpoint;
pub use kgqan_nlp;
pub use kgqan_rdf;
pub use kgqan_sparql;
